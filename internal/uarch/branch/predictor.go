// Package branch implements the conditional branch predictors the paper
// measures and simulates: the Smith bimodal predictor, two-level adaptive
// GAs/gshare/gselect predictors (Yeh & Patt), a local-history PAs
// predictor, a hybrid with a chooser table (Evers et al.) standing in for
// the reverse-engineered Intel Xeon E5440 predictor (§5.4), Seznec's
// L-TAGE (§7.2.2), a perfect oracle, and a branch target buffer for
// indirect transfers. A configuration registry generates the 145-point
// predictor sweep used by the linearity study (§3.2).
//
// All predictors hash the branch PC into their tables, so two branches can
// alias — "branches may conflict with one another in these tables leading
// to aliasing, causing branch prediction accuracy to suffer" (§6.1). That
// aliasing, perturbed by code layout, is the signal interferometry
// measures.
package branch

import "fmt"

// Predictor is a conditional branch direction predictor. Implementations
// keep all speculative state (history registers, tables) internally;
// Update must be called exactly once per Predict, with the same pc, in
// program order.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc uint64, taken bool)
	// Name identifies the configuration, e.g. "gshare-4096x12".
	Name() string
	// SizeBits returns the hardware budget in bits of predictor state.
	SizeBits() int
	// Reset restores the power-on state.
	Reset()
}

// Oracle is implemented by predictors that are defined to be always
// correct; simulators special-case them instead of calling Predict.
type Oracle interface {
	Oracle()
}

// counter is a saturating 2-bit counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// hashPC folds a branch address into a table index seed. Dropping the low
// two bits reflects instruction alignment; folding the upper bits keeps
// every address bit relevant, so moving a procedure anywhere in the text
// segment changes the index.
func hashPC(pc uint64) uint64 {
	pc >>= 2
	return pc ^ pc>>13 ^ pc>>27
}

// Bimodal is Smith's predictor: a table of 2-bit counters indexed by the
// branch address.
type Bimodal struct {
	table []counter
	mask  uint64
	name  string
}

// NewBimodal builds a bimodal predictor with the given table size, which
// must be a power of two.
func NewBimodal(entries int) *Bimodal {
	checkPow2(entries, "bimodal entries")
	return &Bimodal{
		table: make([]counter, entries),
		mask:  uint64(entries - 1),
		name:  fmt.Sprintf("bimodal-%d", entries),
	}
}

func (b *Bimodal) index(pc uint64) uint64 { return hashPC(pc) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return b.name }

// SizeBits implements Predictor.
func (b *Bimodal) SizeBits() int { return 2 * len(b.table) }

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
}

// AlwaysTaken is the trivial static predictor.
type AlwaysTaken struct{}

// Predict implements Predictor.
func (AlwaysTaken) Predict(uint64) bool { return true }

// Update implements Predictor.
func (AlwaysTaken) Update(uint64, bool) {}

// Name implements Predictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// SizeBits implements Predictor.
func (AlwaysTaken) SizeBits() int { return 0 }

// Reset implements Predictor.
func (AlwaysTaken) Reset() {}

// NeverTaken is the trivial static predictor.
type NeverTaken struct{}

// Predict implements Predictor.
func (NeverTaken) Predict(uint64) bool { return false }

// Update implements Predictor.
func (NeverTaken) Update(uint64, bool) {}

// Name implements Predictor.
func (NeverTaken) Name() string { return "never-taken" }

// SizeBits implements Predictor.
func (NeverTaken) SizeBits() int { return 0 }

// Reset implements Predictor.
func (NeverTaken) Reset() {}

// Perfect is the oracle predictor: simulators treat every prediction as
// correct (0 MPKI), the paper's "perfect branch predictor" reference
// point.
type Perfect struct{}

// Oracle implements the Oracle marker.
func (Perfect) Oracle() {}

// Predict implements Predictor; the value is never used because
// simulators special-case Oracle predictors, but returning the sticky
// not-taken default keeps non-oracle-aware callers deterministic.
func (Perfect) Predict(uint64) bool { return false }

// Update implements Predictor.
func (Perfect) Update(uint64, bool) {}

// Name implements Predictor.
func (Perfect) Name() string { return "perfect" }

// SizeBits implements Predictor.
func (Perfect) SizeBits() int { return 0 }

// Reset implements Predictor.
func (Perfect) Reset() {}

func checkPow2(n int, what string) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("branch: %s %d must be a positive power of two", what, n))
	}
}

// Compile-time interface checks.
var (
	_ Predictor = (*Bimodal)(nil)
	_ Predictor = AlwaysTaken{}
	_ Predictor = NeverTaken{}
	_ Predictor = Perfect{}
	_ Oracle    = Perfect{}
)
