package branch

import "fmt"

// Gskew is an e-gskew predictor (Michaud, Seznec & Uhlig — reference [21]
// of the paper, "Trading conflict and capacity aliasing in conditional
// branch predictors"): three banks of 2-bit counters indexed by three
// *different* skewed hashes of (address, history), predicting by majority
// vote. Aliasing that corrupts one bank is outvoted by the other two, so
// gskew trades capacity for conflict resilience — exactly the effect
// whose absence interferometry exploits in simpler tables.
type Gskew struct {
	banks    [3][]counter
	mask     uint64
	histBits uint
	ghr      uint64
	name     string
	// partialUpdate applies the enhanced (e-gskew) update policy: on a
	// correct prediction only the agreeing banks train, leaving dissenting
	// entries to serve their other occupants.
	partialUpdate bool
}

// NewGskew builds a gskew predictor with three banks of the given size
// (a power of two) and history length.
func NewGskew(entriesPerBank int, histBits uint) *Gskew {
	checkPow2(entriesPerBank, "gskew bank entries")
	g := &Gskew{
		mask:          uint64(entriesPerBank - 1),
		histBits:      histBits,
		name:          fmt.Sprintf("gskew-3x%dx%d", entriesPerBank, histBits),
		partialUpdate: true,
	}
	for i := range g.banks {
		g.banks[i] = make([]counter, entriesPerBank)
	}
	return g
}

// skew computes the three bank indices via distinct mixing functions of
// the PC and history (H, H^shift, and a rotated combination), after the
// skewing-function family of the original paper.
func (g *Gskew) skew(pc uint64) [3]uint64 {
	h := hashPC(pc)
	hist := g.ghr & (1<<g.histBits - 1)
	v := h ^ hist
	return [3]uint64{
		v & g.mask,
		(v ^ v>>7 ^ h<<3) & g.mask,
		(v ^ v>>13 ^ hist<<5) & g.mask,
	}
}

// Predict implements Predictor.
func (g *Gskew) Predict(pc uint64) bool {
	idx := g.skew(pc)
	votes := 0
	for b := range g.banks {
		if g.banks[b][idx[b]].taken() {
			votes++
		}
	}
	return votes >= 2
}

// Update implements Predictor.
func (g *Gskew) Update(pc uint64, taken bool) {
	idx := g.skew(pc)
	correct := g.Predict(pc) == taken
	for b := range g.banks {
		e := &g.banks[b][idx[b]]
		if g.partialUpdate && correct && e.taken() != taken {
			// Enhanced update: spare the dissenting bank on a correct
			// majority, reducing cross-branch interference.
			continue
		}
		*e = e.update(taken)
	}
	g.ghr = g.ghr<<1 | boolBit(taken)
}

// Name implements Predictor.
func (g *Gskew) Name() string { return g.name }

// SizeBits implements Predictor.
func (g *Gskew) SizeBits() int {
	return 3*2*len(g.banks[0]) + int(g.histBits)
}

// Reset implements Predictor.
func (g *Gskew) Reset() {
	for b := range g.banks {
		for i := range g.banks[b] {
			g.banks[b][i] = 0
		}
	}
	g.ghr = 0
}

// Compile-time interface check.
var _ Predictor = (*Gskew)(nil)
