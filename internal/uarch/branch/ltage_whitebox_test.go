package branch

import (
	"testing"

	"interferometry/internal/xrand"
)

// TestLTAGEHistoryBookkeeping validates the multiword global history and
// the circularly-folded registers against a naive reference that keeps
// the outcome list explicitly. The folded-register update consumes the
// bit falling out of each component's window; extracting it from the
// shifted multiword history is exactly the kind of bookkeeping that
// silently corrupts a TAGE implementation.
func TestLTAGEHistoryBookkeeping(t *testing.T) {
	l := NewLTAGE(LTAGEConfig{NumTables: 6, LogTagged: 7, LogBase: 10, MaxHist: 130})
	rng := xrand.New(99)

	// Naive shadow state: outcomes[0] is the most recent.
	var outcomes []bool
	// One shadow folded register per component, driven from the explicit
	// outcome list.
	type shadowFold struct{ f folded }
	shadows := make([][3]shadowFold, len(l.comps))
	for i := range l.comps {
		c := &l.comps[i]
		shadows[i][0].f.init(c.histLen, c.logg)
		shadows[i][1].f.init(c.histLen, c.tagBits)
		shadows[i][2].f.init(c.histLen, c.tagBits-1)
	}

	for step := 0; step < 5000; step++ {
		pc := 0x400000 + uint64(rng.Intn(64))*24
		taken := rng.Bool(0.6)
		l.Predict(pc)
		l.Update(pc, taken)

		// Shadow update: new bit is the outcome; the old bit for window
		// length W is the one that was at age W-1 before this outcome was
		// prepended.
		for i := range l.comps {
			c := &l.comps[i]
			oldBit := uint64(0)
			if len(outcomes) >= c.histLen && c.histLen >= 1 && outcomes[c.histLen-1] {
				oldBit = 1
			}
			newBit := uint64(0)
			if taken {
				newBit = 1
			}
			shadows[i][0].f.update(newBit, oldBit)
			shadows[i][1].f.update(newBit, oldBit)
			shadows[i][2].f.update(newBit, oldBit)
		}
		outcomes = append([]bool{taken}, outcomes...)
		if len(outcomes) > l.histLen+8 {
			outcomes = outcomes[:l.histLen+8]
		}

		// Multiword history must agree with the explicit list.
		for age := 0; age < len(outcomes) && age < l.histLen; age++ {
			want := uint64(0)
			if outcomes[age] {
				want = 1
			}
			if got := l.histBit(age); got != want {
				t.Fatalf("step %d: history bit age %d = %d, want %d", step, age, got, want)
			}
		}
		// Folded registers must agree with the shadow folds.
		for i := range l.comps {
			c := &l.comps[i]
			if c.foldIdx.comp != shadows[i][0].f.comp {
				t.Fatalf("step %d comp %d: foldIdx %x, shadow %x",
					step, i, c.foldIdx.comp, shadows[i][0].f.comp)
			}
			if c.foldTag1.comp != shadows[i][1].f.comp {
				t.Fatalf("step %d comp %d: foldTag1 %x, shadow %x",
					step, i, c.foldTag1.comp, shadows[i][1].f.comp)
			}
		}
	}
}

// TestFoldedMatchesDirectFold checks the folded register against a
// direct O(len) fold of an explicit window.
func TestFoldedMatchesDirectFold(t *testing.T) {
	const olen, clen = 21, 8
	var f folded
	f.init(olen, clen)
	rng := xrand.New(5)
	var window []uint64 // window[0] is newest

	direct := func() uint64 {
		// Reconstruct by replaying the recurrence over the full history
		// from empty state — the definition of the folded register.
		var g folded
		g.init(olen, clen)
		for k := len(window) - 1; k >= 0; k-- {
			oldBit := uint64(0)
			idx := olen - 1 // age of the dropped bit before this insert
			// The bit at age idx before inserting window[k] is
			// window[k+idx+1]... relative to final indexing: when
			// inserting the bit that now has age k, the dropped bit now
			// has age k+olen.
			if k+olen < len(window) {
				oldBit = window[k+olen]
			}
			_ = idx
			g.update(window[k], oldBit)
		}
		return g.comp
	}

	for step := 0; step < 2000; step++ {
		bit := uint64(0)
		if rng.Bool(0.5) {
			bit = 1
		}
		oldBit := uint64(0)
		if len(window) >= olen {
			oldBit = window[olen-1]
		}
		f.update(bit, oldBit)
		window = append([]uint64{bit}, window...)
		if len(window) > 4*olen {
			window = window[:4*olen]
		}
		if f.comp != direct() {
			t.Fatalf("step %d: folded %x, direct %x", step, f.comp, direct())
		}
	}
}
