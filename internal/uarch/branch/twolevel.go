package branch

import "fmt"

// Two-level adaptive predictors after Yeh & Patt. All three share the
// global-history mechanism and differ in how history and address combine
// into the pattern-table index:
//
//	GAs:     index = addr_bits ++ history   (set-partitioned tables)
//	gselect: index = addr_bits ++ history   (synonym used when the address
//	         field is wide; we keep both names for the config space)
//	gshare:  index = addr_bits XOR history  (McFarling)

// GAs is a two-level global-history predictor with per-address pattern
// table columns: the upper index bits come from the branch address, the
// lower bits from the global history register. The paper simulates "GAs
// branch predictors ranging in size from 2KB to 16KB" (§7.2) and believes
// the Xeon's predictor contains a GAs-style component (§5.4).
type GAs struct {
	table    []counter
	histBits uint
	addrBits uint
	ghr      uint64
	name     string
}

// NewGAs builds a GAs predictor with 2^addrBits address sets and histBits
// bits of global history; the table has 2^(addrBits+histBits) counters.
func NewGAs(addrBits, histBits uint) *GAs {
	if addrBits+histBits > 28 {
		panic("branch: GAs table too large")
	}
	return &GAs{
		table:    make([]counter, 1<<(addrBits+histBits)),
		histBits: histBits,
		addrBits: addrBits,
		name:     fmt.Sprintf("gas-a%d-h%d", addrBits, histBits),
	}
}

func (g *GAs) index(pc uint64) uint64 {
	addr := hashPC(pc) & (1<<g.addrBits - 1)
	hist := g.ghr & (1<<g.histBits - 1)
	return addr<<g.histBits | hist
}

// Predict implements Predictor.
func (g *GAs) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor.
func (g *GAs) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.ghr = g.ghr<<1 | boolBit(taken)
}

// Name implements Predictor.
func (g *GAs) Name() string { return g.name }

// SizeBits implements Predictor.
func (g *GAs) SizeBits() int { return 2*len(g.table) + int(g.histBits) }

// Reset implements Predictor.
func (g *GAs) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.ghr = 0
}

// Gshare is McFarling's gshare: pattern table indexed by PC XOR global
// history.
type Gshare struct {
	table    []counter
	histBits uint
	mask     uint64
	ghr      uint64
	name     string
}

// NewGshare builds a gshare predictor with the given table size (power of
// two) and history length.
func NewGshare(entries int, histBits uint) *Gshare {
	checkPow2(entries, "gshare entries")
	return &Gshare{
		table:    make([]counter, entries),
		histBits: histBits,
		mask:     uint64(entries - 1),
		name:     fmt.Sprintf("gshare-%dx%d", entries, histBits),
	}
}

func (g *Gshare) index(pc uint64) uint64 {
	hist := g.ghr & (1<<g.histBits - 1)
	return (hashPC(pc) ^ hist) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.ghr = g.ghr<<1 | boolBit(taken)
}

// Name implements Predictor.
func (g *Gshare) Name() string { return g.name }

// SizeBits implements Predictor.
func (g *Gshare) SizeBits() int { return 2*len(g.table) + int(g.histBits) }

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.ghr = 0
}

// PAs is a two-level local-history predictor: a per-branch history table
// indexed by PC feeds a shared pattern table.
type PAs struct {
	bht      []uint16 // local histories
	table    []counter
	histBits uint
	bhtMask  uint64
	patMask  uint64
	name     string
}

// NewPAs builds a PAs predictor with bhtEntries local-history registers of
// histBits bits and a pattern table of patEntries counters.
func NewPAs(bhtEntries, patEntries int, histBits uint) *PAs {
	checkPow2(bhtEntries, "PAs BHT entries")
	checkPow2(patEntries, "PAs pattern entries")
	if histBits > 16 {
		panic("branch: PAs history too long")
	}
	return &PAs{
		bht:      make([]uint16, bhtEntries),
		table:    make([]counter, patEntries),
		histBits: histBits,
		bhtMask:  uint64(bhtEntries - 1),
		patMask:  uint64(patEntries - 1),
		name:     fmt.Sprintf("pas-%dx%dx%d", bhtEntries, patEntries, histBits),
	}
}

func (p *PAs) index(pc uint64) (bhtIdx, patIdx uint64) {
	bhtIdx = hashPC(pc) & p.bhtMask
	hist := uint64(p.bht[bhtIdx]) & (1<<p.histBits - 1)
	patIdx = (hist ^ hashPC(pc)<<3) & p.patMask
	return
}

// Predict implements Predictor.
func (p *PAs) Predict(pc uint64) bool {
	_, pat := p.index(pc)
	return p.table[pat].taken()
}

// Update implements Predictor.
func (p *PAs) Update(pc uint64, taken bool) {
	bht, pat := p.index(pc)
	p.table[pat] = p.table[pat].update(taken)
	p.bht[bht] = p.bht[bht]<<1 | uint16(boolBit(taken))
}

// Name implements Predictor.
func (p *PAs) Name() string { return p.name }

// SizeBits implements Predictor.
func (p *PAs) SizeBits() int {
	return len(p.bht)*int(p.histBits) + 2*len(p.table)
}

// Reset implements Predictor.
func (p *PAs) Reset() {
	for i := range p.bht {
		p.bht[i] = 0
	}
	for i := range p.table {
		p.table[i] = 0
	}
}

// Hybrid combines two component predictors with a chooser table of 2-bit
// counters indexed by PC (Evers et al.; McFarling's combining predictor).
// The paper's reverse engineering suggests the Xeon E5440 predictor "is
// likely to contain a hybrid of a GAs-style branch predictor and a bimodal
// branch predictor" (§5.4) — NewXeonE5440 builds exactly that.
type Hybrid struct {
	a, b    Predictor // chooser counter >= 2 selects a
	chooser []counter
	mask    uint64
	name    string
}

// NewHybrid builds a hybrid of a and b with a chooser of the given size.
func NewHybrid(a, b Predictor, chooserEntries int) *Hybrid {
	checkPow2(chooserEntries, "hybrid chooser entries")
	return &Hybrid{
		a:       a,
		b:       b,
		chooser: make([]counter, chooserEntries),
		mask:    uint64(chooserEntries - 1),
		name:    fmt.Sprintf("hybrid(%s,%s)", a.Name(), b.Name()),
	}
}

func (h *Hybrid) index(pc uint64) uint64 { return hashPC(pc) & h.mask }

// Predict implements Predictor.
func (h *Hybrid) Predict(pc uint64) bool {
	if h.chooser[h.index(pc)].taken() {
		return h.a.Predict(pc)
	}
	return h.b.Predict(pc)
}

// Update implements Predictor.
func (h *Hybrid) Update(pc uint64, taken bool) {
	pa := h.a.Predict(pc)
	pb := h.b.Predict(pc)
	// Train the chooser toward the component that was right when they
	// disagree.
	if pa != pb {
		i := h.index(pc)
		h.chooser[i] = h.chooser[i].update(pa == taken)
	}
	h.a.Update(pc, taken)
	h.b.Update(pc, taken)
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return h.name }

// SizeBits implements Predictor.
func (h *Hybrid) SizeBits() int {
	return h.a.SizeBits() + h.b.SizeBits() + 2*len(h.chooser)
}

// Reset implements Predictor.
func (h *Hybrid) Reset() {
	h.a.Reset()
	h.b.Reset()
	for i := range h.chooser {
		h.chooser[i] = 0
	}
}

// NewXeonE5440 builds the model of the real machine's predictor: a hybrid
// of a GAs-style global predictor and a bimodal predictor with a chooser,
// sized to a plausible Core-microarchitecture budget.
func NewXeonE5440() *Hybrid {
	h := NewHybrid(NewGAs(5, 8), NewBimodal(4096), 4096)
	h.name = "xeon-e5440"
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Compile-time interface checks.
var (
	_ Predictor = (*GAs)(nil)
	_ Predictor = (*Gshare)(nil)
	_ Predictor = (*PAs)(nil)
	_ Predictor = (*Hybrid)(nil)
)
