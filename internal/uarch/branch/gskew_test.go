package branch_test

import (
	"testing"

	"interferometry/internal/uarch/branch"
	"interferometry/internal/xrand"
)

func TestGskewLearnsPatterns(t *testing.T) {
	rate := measure(branch.NewGskew(2048, 10), patternStream(8, 60000))
	if rate > 0.05 {
		t.Fatalf("gskew rate %v on learnable patterns", rate)
	}
}

func TestGskewResistsAliasing(t *testing.T) {
	// The selling point of skewed banks: under heavy capacity pressure
	// from opposite-biased branches, the majority vote outperforms a
	// single gshare table of the same total budget (3x1024 counters vs
	// one 4096-entry table here, so gskew has LESS storage).
	aliasing := func(yield func(uint64, bool)) {
		r := xrand.New(900)
		const nBranches = 600
		for i := 0; i < 250000; i++ {
			b := r.Intn(nBranches)
			dir := xrand.Mix(uint64(b), 3)&1 == 1
			taken := dir
			if r.Bool(0.04) {
				taken = !taken
			}
			yield(branchPC(b), taken)
		}
	}
	gskew := measure(branch.NewGskew(1024, 6), aliasing)
	gshare := measure(branch.NewGshare(1024, 6), aliasing)
	if gskew >= gshare {
		t.Fatalf("gskew (%v) should beat an equally-sized-bank gshare (%v) under aliasing", gskew, gshare)
	}
}

func TestGskewDeterministicAndResettable(t *testing.T) {
	p := branch.NewGskew(512, 8)
	first := measure(p, patternStream(8, 20000))
	p.Reset()
	second := measure(p, patternStream(8, 20000))
	if first != second {
		t.Fatalf("rates differ after reset: %v vs %v", first, second)
	}
}

func TestGskewSizeBits(t *testing.T) {
	g := branch.NewGskew(1024, 12)
	if want := 3*2*1024 + 12; g.SizeBits() != want {
		t.Fatalf("SizeBits = %d, want %d", g.SizeBits(), want)
	}
	if g.Name() != "gskew-3x1024x12" {
		t.Fatalf("name %q", g.Name())
	}
}

func TestGskewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two bank accepted")
		}
	}()
	branch.NewGskew(1000, 8)
}
