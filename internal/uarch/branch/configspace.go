package branch

import "fmt"

// This file generates the predictor sweep of the paper's linearity study:
// "MASE simulates 145 different branch predictor configurations with
// varying accuracies, as well as a perfect branch predictor" (§3.2). The
// sweep deliberately spans terrible (tiny bimodal, static) through
// excellent (large L-TAGE) so the regression of CPI on MPKI is exercised
// over a wide accuracy range.

// Factory builds a fresh predictor instance; sweeps need independent
// state per benchmark run.
type Factory struct {
	Name string
	New  func() Predictor
}

// ConfigSpace returns exactly n predictor factories of graded accuracy.
// It panics if n exceeds the enumerable space (which is far larger than
// 145).
func ConfigSpace(n int) []Factory {
	var fs []Factory
	add := func(name string, mk func() Predictor) {
		fs = append(fs, Factory{Name: name, New: mk})
	}

	// Static predictors: the floor.
	add("always-taken", func() Predictor { return AlwaysTaken{} })
	add("never-taken", func() Predictor { return NeverTaken{} })

	// Bimodal family.
	for _, entries := range []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768} {
		e := entries
		add(fmt.Sprintf("bimodal-%d", e), func() Predictor { return NewBimodal(e) })
	}

	// Gshare family: table size x history length.
	for _, entries := range []int{256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536} {
		for _, hist := range []uint{2, 4, 6, 8, 10, 12, 14} {
			e, h := entries, hist
			add(fmt.Sprintf("gshare-%dx%d", e, h), func() Predictor { return NewGshare(e, h) })
		}
	}

	// GAs family: address bits x history bits.
	for _, addr := range []uint{2, 3, 4, 5, 6, 7, 8} {
		for _, hist := range []uint{2, 4, 6, 8, 10, 12} {
			a, h := addr, hist
			add(fmt.Sprintf("gas-a%d-h%d", a, h), func() Predictor { return NewGAs(a, h) })
		}
	}

	// PAs family.
	for _, bht := range []int{256, 1024, 4096} {
		for _, hist := range []uint{4, 6, 8, 10} {
			b, h := bht, hist
			add(fmt.Sprintf("pas-%dx%d", b, h), func() Predictor { return NewPAs(b, 4096, h) })
		}
	}

	// Hybrid family.
	for _, hist := range []uint{4, 6, 8, 10, 12} {
		for _, entries := range []int{1024, 4096, 16384} {
			h, e := hist, entries
			add(fmt.Sprintf("hybrid-gshare%dx%d+bimodal", e, h), func() Predictor {
				return NewHybrid(NewGshare(e, h), NewBimodal(e), e)
			})
		}
	}

	// Gskew family (Michaud, Seznec & Uhlig — the paper's reference [21]).
	for _, entries := range []int{512, 2048, 8192} {
		for _, hist := range []uint{6, 10} {
			e, h := entries, hist
			add(fmt.Sprintf("gskew-3x%dx%d", e, h), func() Predictor { return NewGskew(e, h) })
		}
	}

	// Perceptron family (Jiménez & Lin).
	for _, rows := range []int{128, 512, 2048} {
		for _, hist := range []int{12, 24, 40, 59} {
			r, h := rows, hist
			add(fmt.Sprintf("perceptron-%dx%d", r, h), func() Predictor { return NewPerceptron(r, h) })
		}
	}

	// TAGE family: scaled-down through full L-TAGE.
	for _, lt := range []struct {
		tables int
		logg   uint
	}{{4, 7}, {6, 8}, {8, 9}, {12, 10}, {12, 11}} {
		t, g := lt.tables, lt.logg
		add(fmt.Sprintf("l-tage-%dx2^%d", t, g), func() Predictor {
			return NewLTAGE(LTAGEConfig{NumTables: t, LogTagged: g, LogBase: 12})
		})
	}

	if n > len(fs) {
		panic(fmt.Sprintf("branch: ConfigSpace has only %d configurations, %d requested", len(fs), n))
	}
	if n <= 0 {
		n = len(fs)
	}
	// Take an even spread across the ordered families so any prefix still
	// covers the accuracy range.
	if n == len(fs) {
		return fs
	}
	out := make([]Factory, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fs[i*len(fs)/n])
	}
	return out
}

// PaperConfigCount is the sweep size used by the paper's linearity study.
const PaperConfigCount = 145

// GAsBudget builds the GAs predictor for a given hardware budget in bytes
// (2KB through 16KB in the paper's Figure 7 sweep): 4 counters per byte,
// with history getting roughly 60% of the index bits.
func GAsBudget(bytes int) *GAs {
	checkPow2(bytes, "GAs budget bytes")
	indexBits := uint(0)
	for 1<<(indexBits+1) <= bytes*4 {
		indexBits++
	}
	// Split the index bits roughly evenly between address sets and global
	// history: growing the budget both reduces table aliasing and extends
	// the learnable history, as in Yeh & Patt's scaling study.
	addr := (indexBits + 1) / 2
	hist := indexBits - addr
	if hist > 16 {
		hist = 16
		addr = indexBits - hist
	}
	g := NewGAs(addr, hist)
	g.name = fmt.Sprintf("gas-%dKB", bytes/1024)
	return g
}

// PaperPredictors returns the factories of Figure 7/8: the 2,4,8,16KB GAs
// predictors and L-TAGE. The real machine predictor and the perfect
// predictor are handled separately by the experiment drivers.
func PaperPredictors() []Factory {
	return []Factory{
		{Name: "gas-2KB", New: func() Predictor { return GAsBudget(2048) }},
		{Name: "gas-4KB", New: func() Predictor { return GAsBudget(4096) }},
		{Name: "gas-8KB", New: func() Predictor { return GAsBudget(8192) }},
		{Name: "gas-16KB", New: func() Predictor { return GAsBudget(16384) }},
		{Name: "l-tage", New: func() Predictor { return NewLTAGEDefault() }},
	}
}
