package branch

import (
	"fmt"
	"math"
)

// LTAGE is Seznec's L-TAGE predictor (JILP 2007, CBP-2 winner), "currently
// the most accurate branch predictor in the academic literature" at the
// time of the paper (§7.2.2): a bimodal base predictor, a set of
// partially-tagged components indexed with geometrically increasing
// global-history lengths, and a loop predictor for constant-trip loops.
type LTAGE struct {
	name string

	base []counter // bimodal base predictor

	comps []tageComp
	// ghist is the global history, youngest outcome in bit 0 of word 0.
	ghist   []uint64
	histLen int

	useAltOnNA int8 // 4-bit signed counter: prefer altpred for weak entries

	lfsr uint64 // deterministic allocation randomness

	ticks      uint64 // updates since last graceful useful-bit reset
	resetEvery uint64

	loop *loopPredictor

	// Scratch from the last Predict, consumed by Update.
	lastProvider int // component index, -1 = base
	lastAlt      int
	lastProvPred bool
	lastAltPred  bool
	lastWeak     bool
	lastIdx      []int
	lastTag      []uint16
	lastLoopHit  bool
	lastLoopPred bool
	predictedPC  uint64
}

type tageComp struct {
	logg    uint // log2 entries
	tagBits uint // partial tag width
	histLen int  // history length
	entries []tageEntry
	// Folded histories for index and tag computation.
	foldIdx  folded
	foldTag1 folded
	foldTag2 folded
}

type tageEntry struct {
	ctr int8 // signed 3-bit: >= 0 predicts taken
	tag uint16
	u   uint8 // 2-bit useful counter
}

// folded is a circularly-folded history register (Seznec's trick for O(1)
// index computation with arbitrarily long histories).
type folded struct {
	comp    uint64
	clen    uint // compressed length (output bits)
	olen    int  // original history length
	outMask uint64
}

func (f *folded) init(olen int, clen uint) {
	f.comp = 0
	f.clen = clen
	f.olen = olen
	f.outMask = 1<<clen - 1
}

// update folds in the newest history bit (new) and folds out the oldest
// (old).
func (f *folded) update(newBit, oldBit uint64) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << (uint(f.olen) % f.clen)
	f.comp ^= f.comp >> f.clen
	f.comp &= f.outMask
}

// LTAGEConfig sizes an LTAGE instance.
type LTAGEConfig struct {
	// NumTables is the number of tagged components. Zero means 12.
	NumTables int
	// LogBase is log2 of the bimodal table. Zero means 14.
	LogBase uint
	// LogTagged is log2 entries of each tagged table. Zero means 10.
	LogTagged uint
	// MinHist and MaxHist bound the geometric history series. Zeros mean
	// 4 and 640.
	MinHist, MaxHist int
}

func (c *LTAGEConfig) fillDefaults() {
	if c.NumTables == 0 {
		c.NumTables = 12
	}
	if c.LogBase == 0 {
		c.LogBase = 14
	}
	if c.LogTagged == 0 {
		c.LogTagged = 10
	}
	if c.MinHist == 0 {
		c.MinHist = 4
	}
	if c.MaxHist == 0 {
		c.MaxHist = 640
	}
}

// NewLTAGE builds an L-TAGE predictor.
func NewLTAGE(cfg LTAGEConfig) *LTAGE {
	cfg.fillDefaults()
	l := &LTAGE{
		name:       fmt.Sprintf("l-tage-%dx2^%d", cfg.NumTables, cfg.LogTagged),
		base:       make([]counter, 1<<cfg.LogBase),
		comps:      make([]tageComp, cfg.NumTables),
		lfsr:       0x1234567890abcdef,
		resetEvery: 256 * 1024,
		loop:       newLoopPredictor(6),
		lastIdx:    make([]int, cfg.NumTables),
		lastTag:    make([]uint16, cfg.NumTables),
	}
	// Geometric history lengths between MinHist and MaxHist.
	ratio := math.Pow(float64(cfg.MaxHist)/float64(cfg.MinHist), 1/float64(cfg.NumTables-1))
	hl := float64(cfg.MinHist)
	for i := range l.comps {
		c := &l.comps[i]
		c.logg = cfg.LogTagged
		c.histLen = int(hl + 0.5)
		if i > 0 && c.histLen <= l.comps[i-1].histLen {
			c.histLen = l.comps[i-1].histLen + 1
		}
		hl *= ratio
		// Tag widths grow with history length, as in the CBP-2 entry.
		switch {
		case i < cfg.NumTables/3:
			c.tagBits = 9
		case i < 2*cfg.NumTables/3:
			c.tagBits = 11
		default:
			c.tagBits = 13
		}
		c.entries = make([]tageEntry, 1<<c.logg)
		c.foldIdx.init(c.histLen, c.logg)
		c.foldTag1.init(c.histLen, c.tagBits)
		c.foldTag2.init(c.histLen, c.tagBits-1)
	}
	l.histLen = l.comps[len(l.comps)-1].histLen
	l.ghist = make([]uint64, (l.histLen+63)/64+1)
	return l
}

// NewLTAGEDefault builds the standard ~32KB configuration used in the
// paper-scale experiments.
func NewLTAGEDefault() *LTAGE { return NewLTAGE(LTAGEConfig{}) }

func (l *LTAGE) histBit(age int) uint64 {
	return l.ghist[age>>6] >> (uint(age) & 63) & 1
}

func (l *LTAGE) compIndex(ci int, pc uint64) int {
	c := &l.comps[ci]
	h := hashPC(pc)
	idx := h ^ h>>(c.logg) ^ c.foldIdx.comp
	return int(idx & (1<<c.logg - 1))
}

func (l *LTAGE) compTag(ci int, pc uint64) uint16 {
	c := &l.comps[ci]
	h := hashPC(pc)
	t := h ^ c.foldTag1.comp ^ c.foldTag2.comp<<1
	return uint16(t & (1<<c.tagBits - 1))
}

func (l *LTAGE) baseIndex(pc uint64) int {
	return int(hashPC(pc) & uint64(len(l.base)-1))
}

// Predict implements Predictor.
func (l *LTAGE) Predict(pc uint64) bool {
	l.predictedPC = pc
	l.lastProvider, l.lastAlt = -1, -1

	for i := range l.comps {
		l.lastIdx[i] = l.compIndex(i, pc)
		l.lastTag[i] = l.compTag(i, pc)
	}
	// Longest-history match is the provider; next match is the alternate.
	for i := len(l.comps) - 1; i >= 0; i-- {
		e := &l.comps[i].entries[l.lastIdx[i]]
		if e.tag == l.lastTag[i] {
			if l.lastProvider == -1 {
				l.lastProvider = i
			} else {
				l.lastAlt = i
				break
			}
		}
	}

	basePred := l.base[l.baseIndex(pc)].taken()
	l.lastAltPred = basePred
	if l.lastAlt >= 0 {
		l.lastAltPred = l.comps[l.lastAlt].entries[l.lastIdx[l.lastAlt]].ctr >= 0
	}

	pred := basePred
	l.lastWeak = false
	if l.lastProvider >= 0 {
		e := &l.comps[l.lastProvider].entries[l.lastIdx[l.lastProvider]]
		l.lastProvPred = e.ctr >= 0
		// A "newly allocated" weak entry (|ctr| minimal, u==0) may be less
		// reliable than the alternate prediction.
		l.lastWeak = (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if l.lastWeak && l.useAltOnNA >= 0 {
			pred = l.lastAltPred
		} else {
			pred = l.lastProvPred
		}
	}

	// Loop predictor overrides when confident.
	l.lastLoopHit, l.lastLoopPred = l.loop.predict(pc)
	if l.lastLoopHit {
		pred = l.lastLoopPred
	}
	return pred
}

// Update implements Predictor.
func (l *LTAGE) Update(pc uint64, taken bool) {
	if pc != l.predictedPC {
		// Tolerate out-of-protocol use: recompute prediction state.
		l.Predict(pc)
	}

	tagePred := l.tagePrediction()
	// A confidently wrong loop entry is freed immediately, as in L-TAGE;
	// without this, a corrupted entry (e.g. two aliasing loop branches)
	// would override the tagged tables forever.
	if l.lastLoopHit && l.lastLoopPred != taken {
		l.loop.invalidate(pc)
	}
	l.loop.update(pc, taken, tagePred == taken)

	// Train useAltOnNA on weak-provider cases.
	if l.lastProvider >= 0 && l.lastWeak && l.lastProvPred != l.lastAltPred {
		l.useAltOnNA = satSigned(l.useAltOnNA, l.lastAltPred == taken, -8, 7)
	}

	// Allocate on a TAGE misprediction, in a component with longer
	// history than the provider.
	if tagePred != taken && l.lastProvider < len(l.comps)-1 {
		l.allocate(taken)
	}

	// Update the provider (and sometimes the alternate/base).
	if l.lastProvider >= 0 {
		c := &l.comps[l.lastProvider]
		e := &c.entries[l.lastIdx[l.lastProvider]]
		e.ctr = satSigned(e.ctr, taken, -4, 3)
		// Useful counter: provider was right and alternate was wrong.
		if l.lastProvPred != l.lastAltPred {
			if l.lastProvPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		// When the provider entry is still weak, also train the base.
		if e.u == 0 {
			bi := l.baseIndex(pc)
			l.base[bi] = l.base[bi].update(taken)
		}
	} else {
		bi := l.baseIndex(pc)
		l.base[bi] = l.base[bi].update(taken)
	}

	// Graceful periodic reset of useful counters.
	l.ticks++
	if l.ticks >= l.resetEvery {
		l.ticks = 0
		for ci := range l.comps {
			for ei := range l.comps[ci].entries {
				l.comps[ci].entries[ei].u >>= 1
			}
		}
	}

	l.pushHistory(taken)
}

// tagePrediction reconstructs the TAGE component of the last prediction
// (ignoring the loop predictor override).
func (l *LTAGE) tagePrediction() bool {
	if l.lastProvider < 0 {
		return l.lastAltPred
	}
	if l.lastWeak && l.useAltOnNA >= 0 {
		return l.lastAltPred
	}
	return l.lastProvPred
}

func (l *LTAGE) allocate(taken bool) {
	// Find candidate components above the provider with a free (u==0)
	// entry; pick one with LFSR randomness biased toward shorter
	// histories. If none are free, age all candidates.
	start := l.lastProvider + 1
	var candidates []int
	for i := start; i < len(l.comps); i++ {
		if l.comps[i].entries[l.lastIdx[i]].u == 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		for i := start; i < len(l.comps); i++ {
			e := &l.comps[i].entries[l.lastIdx[i]]
			if e.u > 0 {
				e.u--
			}
		}
		return
	}
	pick := candidates[0]
	if len(candidates) > 1 {
		l.lfsr = l.lfsr>>1 ^ (-(l.lfsr & 1) & 0xd800000000000000)
		if l.lfsr&3 == 0 { // 1/4 chance to skip to a longer history
			pick = candidates[1]
		}
	}
	e := &l.comps[pick].entries[l.lastIdx[pick]]
	e.tag = l.lastTag[pick]
	e.u = 0
	if taken {
		e.ctr = 0
	} else {
		e.ctr = -1
	}
}

func (l *LTAGE) pushHistory(taken bool) {
	oldest := l.histBit(l.histLen - 1)
	// Shift the multiword history left by one.
	carry := boolBit(taken)
	for i := 0; i < len(l.ghist); i++ {
		next := l.ghist[i] >> 63
		l.ghist[i] = l.ghist[i]<<1 | carry
		carry = next
	}
	newBit := boolBit(taken)
	for i := range l.comps {
		c := &l.comps[i]
		oldBit := uint64(0)
		if c.histLen-1 < l.histLen {
			// The bit that just fell out of this component's window: it
			// was at age histLen-1 before the shift.
			oldBit = l.histBitBeforeShift(c.histLen - 1)
		}
		c.foldIdx.update(newBit, oldBit)
		c.foldTag1.update(newBit, oldBit)
		c.foldTag2.update(newBit, oldBit)
	}
	_ = oldest
}

// histBitBeforeShift returns the bit that had the given age before the
// most recent pushHistory shift; since the shift already happened, age n
// before the shift is age n+1 now.
func (l *LTAGE) histBitBeforeShift(age int) uint64 {
	return l.histBit(age + 1)
}

// Name implements Predictor.
func (l *LTAGE) Name() string { return l.name }

// SizeBits implements Predictor.
func (l *LTAGE) SizeBits() int {
	bits := 2 * len(l.base)
	for i := range l.comps {
		c := &l.comps[i]
		bits += len(c.entries) * int(3+2+c.tagBits)
	}
	bits += l.histLen + 4
	bits += l.loop.sizeBits()
	return bits
}

// Reset implements Predictor.
func (l *LTAGE) Reset() {
	for i := range l.base {
		l.base[i] = 0
	}
	for ci := range l.comps {
		c := &l.comps[ci]
		for ei := range c.entries {
			c.entries[ei] = tageEntry{}
		}
		c.foldIdx.comp = 0
		c.foldTag1.comp = 0
		c.foldTag2.comp = 0
	}
	for i := range l.ghist {
		l.ghist[i] = 0
	}
	l.useAltOnNA = 0
	l.ticks = 0
	l.lfsr = 0x1234567890abcdef
	l.loop.reset()
}

func satSigned(c int8, up bool, lo, hi int8) int8 {
	if up {
		if c < hi {
			return c + 1
		}
		return c
	}
	if c > lo {
		return c - 1
	}
	return c
}

// loopPredictor captures loops with constant trip counts: after the same
// trip count is observed confThreshold times in a row, it predicts the
// exit iteration exactly.
type loopPredictor struct {
	entries []loopEntry
	mask    uint64
}

type loopEntry struct {
	tag      uint16
	pastTrip uint16
	currTrip uint16
	conf     uint8
	valid    bool
}

const loopConfThreshold = 3

func newLoopPredictor(logEntries uint) *loopPredictor {
	n := 1 << logEntries
	return &loopPredictor{entries: make([]loopEntry, n), mask: uint64(n - 1)}
}

func (lp *loopPredictor) slot(pc uint64) (*loopEntry, uint16) {
	h := hashPC(pc)
	tag := uint16((h>>6 ^ h>>13 ^ h>>21) & 0x3fff)
	return &lp.entries[h&lp.mask], tag
}

// invalidate frees the entry for pc if it currently matches.
func (lp *loopPredictor) invalidate(pc uint64) {
	e, tag := lp.slot(pc)
	if e.valid && e.tag == tag {
		*e = loopEntry{}
	}
}

// predict returns (confident, prediction).
func (lp *loopPredictor) predict(pc uint64) (bool, bool) {
	e, tag := lp.slot(pc)
	if !e.valid || e.tag != tag || e.conf < loopConfThreshold {
		return false, false
	}
	// Predict taken until the recorded trip count is reached.
	return true, e.currTrip+1 < e.pastTrip
}

func (lp *loopPredictor) update(pc uint64, taken, tageWasCorrect bool) {
	e, tag := lp.slot(pc)
	if !e.valid || e.tag != tag {
		// Allocate only on a TAGE mispredict of a not-taken outcome (a
		// potential loop exit), as in L-TAGE.
		if !tageWasCorrect && !taken {
			*e = loopEntry{tag: tag, valid: true}
		}
		return
	}
	if taken {
		if e.currTrip < ^uint16(0) {
			e.currTrip++
		}
		return
	}
	// Loop exit: compare trip counts.
	trip := e.currTrip + 1
	if e.pastTrip == trip {
		if e.conf < 7 {
			e.conf++
		}
	} else {
		e.pastTrip = trip
		e.conf = 0
	}
	e.currTrip = 0
}

func (lp *loopPredictor) sizeBits() int {
	// tag 14 + past 16 + curr 16 + conf 3 + valid 1.
	return len(lp.entries) * 50
}

func (lp *loopPredictor) reset() {
	for i := range lp.entries {
		lp.entries[i] = loopEntry{}
	}
}

// Compile-time interface check.
var _ Predictor = (*LTAGE)(nil)
