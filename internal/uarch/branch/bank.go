package branch

import "fmt"

// Xeon-model geometry, fixed by NewXeonE5440: a hybrid of GAs(5,8) and
// a 4096-entry bimodal predictor under a 4096-entry chooser.
const (
	xeonGasAddrBits = 5
	xeonGasHistBits = 8
	xeonGasEntries  = 1 << (xeonGasAddrBits + xeonGasHistBits)
	xeonBimEntries  = 4096
	xeonChoEntries  = 4096
)

// XeonBank is K independent copies of the Xeon-model hybrid predictor
// (NewXeonE5440) with the component tables flattened into lane-major
// arrays: lane k models the predictor state of layout k in a batched
// replay. PredictUpdate performs exactly the operation sequence of
// Hybrid.Predict followed by Hybrid.Update — the equivalence tests pin
// each lane bit-identical to a scalar NewXeonE5440 instance — but with
// no interface dispatch and no redundant component predictions.
type XeonBank struct {
	lanes int
	gas   []counter // [k*xeonGasEntries + idx]
	// The bimodal and chooser tables are indexed by the same hash of the
	// PC, so they are interleaved pairwise — bimcho[2*idx] is the bimodal
	// counter, bimcho[2*idx+1] the chooser — putting both counters a
	// lookup touches on one host cache line.
	bimcho []counter // [k*xeonBimEntries*2 + idx*2 (+1)]
	ghr    []uint64
}

// NewXeonBank builds a bank of lanes Xeon-model predictors in power-on
// state.
func NewXeonBank(lanes int) *XeonBank {
	if lanes <= 0 {
		panic("branch: XeonBank needs at least one lane")
	}
	return &XeonBank{
		lanes:  lanes,
		gas:    make([]counter, lanes*xeonGasEntries),
		bimcho: make([]counter, lanes*xeonBimEntries*2),
		ghr:    make([]uint64, lanes),
	}
}

// Lanes returns the lane count.
func (x *XeonBank) Lanes() int { return x.lanes }

// PredictUpdate returns what lane k's predictor would have predicted for
// the branch at pc and trains it with the resolved outcome, replicating
// scalar Predict-then-Update exactly: the hybrid chooser selects between
// the GAs and bimodal components, the chooser trains when the components
// disagree, and both components always train (the GAs update also shifts
// the lane's global history).
func (x *XeonBank) PredictUpdate(k int, pc uint64, taken bool) bool {
	h := hashPC(pc)
	gi := k*xeonGasEntries + int((h&(1<<xeonGasAddrBits-1))<<xeonGasHistBits|x.ghr[k]&(1<<xeonGasHistBits-1))
	bi := (k*xeonBimEntries + int(h&(xeonBimEntries-1))) * 2
	pa := x.gas[gi].taken()
	pb := x.bimcho[bi].taken()
	var predicted bool
	if x.bimcho[bi+1].taken() {
		predicted = pa
	} else {
		predicted = pb
	}
	if pa != pb {
		x.bimcho[bi+1] = x.bimcho[bi+1].update(pa == taken)
	}
	x.gas[gi] = x.gas[gi].update(taken)
	x.ghr[k] = x.ghr[k]<<1 | boolBit(taken)
	x.bimcho[bi] = x.bimcho[bi].update(taken)
	return predicted
}

// PredictUpdateRow is PredictUpdate across all lanes of one resolved
// branch: pcs[k] is the branch PC in lane k's layout and taken the
// shared outcome. Bit k of the returned mask is set iff lane k
// mispredicted. At most 64 lanes; len(pcs) must not exceed Lanes(). One
// call replaces K dependent calls, letting the CPU overlap the
// independent per-lane table loads.
func (x *XeonBank) PredictUpdateRow(pcs []uint64, taken bool) uint64 {
	var wrong uint64
	bit := boolBit(taken)
	// Hoisted table headers and single loads per counter: stores through
	// the slices would otherwise force the compiler to reload x's fields
	// and re-read each counter cell every iteration.
	gas, bimcho, ghr := x.gas, x.bimcho, x.ghr
	for k := range pcs {
		h := hashPC(pcs[k])
		g := ghr[k]
		gi := k*xeonGasEntries + int((h&(1<<xeonGasAddrBits-1))<<xeonGasHistBits|g&(1<<xeonGasHistBits-1))
		bi := (k*xeonBimEntries + int(h&(xeonBimEntries-1))) * 2
		cg, cb, cc := gas[gi], bimcho[bi], bimcho[bi+1]
		pa := cg.taken()
		pb := cb.taken()
		predicted := pb
		if cc.taken() {
			predicted = pa
		}
		if pa != pb {
			bimcho[bi+1] = cc.update(pa == taken)
		}
		gas[gi] = cg.update(taken)
		ghr[k] = g<<1 | bit
		bimcho[bi] = cb.update(taken)
		if predicted != taken {
			wrong |= 1 << uint(k)
		}
	}
	return wrong
}

// Reset restores every lane to power-on state.
func (x *XeonBank) Reset() {
	for i := range x.gas {
		x.gas[i] = 0
	}
	for i := range x.bimcho {
		x.bimcho[i] = 0
	}
	for k := range x.ghr {
		x.ghr[k] = 0
	}
}

// BTBBank is K independent branch target buffers of identical geometry,
// the SoA counterpart of BTB for batched replay. Like cache.Bank it
// packs the valid bit into the tag word and each set's MRU→LRU way list
// into one uint64 (at most 8 ways), and PredictUpdate replicates
// BTB.Predict's lookup/install/correct sequence exactly.
type BTBBank struct {
	lanes, sets, ways int
	setMask           uint64
	// tags[k*sets*ways + set*ways + w] holds tag<<1|1; 0 means invalid.
	tags               []uint64
	targets            []uint64
	order              []uint64 // [k*sets + set], packed MRU→LRU, MRU in byte 0
	waysMask, identity uint64
}

// NewBTBBank builds a bank of lanes BTBs. It returns an error for
// geometries the packed representation cannot hold (more than 8 ways);
// batched callers fall back to the scalar path.
func NewBTBBank(sets, ways, lanes int) (*BTBBank, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("branch: BTB bank sets %d must be a positive power of two", sets)
	}
	if ways <= 0 || ways > 8 {
		return nil, fmt.Errorf("branch: BTB bank supports 1..8 ways, got %d", ways)
	}
	if lanes <= 0 {
		return nil, fmt.Errorf("branch: BTB bank needs at least one lane")
	}
	b := &BTBBank{
		lanes:   lanes,
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, lanes*sets*ways),
		targets: make([]uint64, lanes*sets*ways),
		order:   make([]uint64, lanes*sets),
	}
	for w := 0; w < ways; w++ {
		b.identity |= uint64(w) << (8 * w)
	}
	if ways == 8 {
		b.waysMask = ^uint64(0)
	} else {
		b.waysMask = uint64(1)<<(8*ways) - 1
	}
	b.Reset()
	return b, nil
}

// Lanes returns the lane count.
func (b *BTBBank) Lanes() int { return b.lanes }

// PredictUpdate looks up the target for the transfer at pc in lane k,
// then installs or corrects the entry with the actual target, returning
// true when the predicted target matched — bit-identical to BTB.Predict
// on lane k's private BTB.
func (b *BTBBank) PredictUpdate(k int, pc, actual uint64) bool {
	h := hashPC(pc)
	set := int(h & b.setMask)
	want := h/(b.setMask+1)<<1 | 1
	base := (k*b.sets + set) * b.ways
	op := &b.order[k*b.sets+set]
	o := *op
	for i := 0; i < b.ways; i++ {
		w := o >> (8 * i) & 0xff
		if b.tags[base+int(w)] == want {
			low := o & (uint64(1)<<(8*i) - 1)
			*op = o&^(uint64(1)<<(8*(i+1))-1) | low<<8 | w
			if b.targets[base+int(w)] == actual {
				return true
			}
			b.targets[base+int(w)] = actual
			return false
		}
	}
	victim := o >> (8 * (b.ways - 1)) & 0xff
	b.tags[base+int(victim)] = want
	b.targets[base+int(victim)] = actual
	*op = (o<<8 | victim) & b.waysMask
	return false
}

// PredictUpdateRow is PredictUpdate across the lanes of one resolved
// indirect transfer: pcs[k] is the transfer PC and actuals[k] the actual
// target in lane k's layout. Bit k of the returned mask is set iff lane
// k mispredicted (the BTB-miss penalty case). At most 64 lanes; len(pcs)
// must equal len(actuals) and not exceed Lanes(). Like XeonBank's row
// form, one call replaces K dependent calls so the per-lane table loads
// can overlap.
func (b *BTBBank) PredictUpdateRow(pcs, actuals []uint64) uint64 {
	var wrong uint64
	for k := range pcs {
		if !b.PredictUpdate(k, pcs[k], actuals[k]) {
			wrong |= 1 << k
		}
	}
	return wrong
}

// Reset restores every lane to power-on state.
func (b *BTBBank) Reset() {
	for i := range b.tags {
		b.tags[i] = 0
	}
	for i := range b.order {
		b.order[i] = b.identity
	}
}
