package branch_test

import (
	"testing"

	"interferometry/internal/uarch/branch"
)

func TestPerceptronLearnsBias(t *testing.T) {
	rate := measure(branch.NewPerceptron(256, 16), biasedStreamAt(densePC, 21, 16, 50000, 0.98))
	if rate > 0.05 {
		t.Fatalf("perceptron rate %v on 98%%-biased branches", rate)
	}
}

func TestPerceptronLearnsPatterns(t *testing.T) {
	pr := measure(branch.NewPerceptron(512, 20), patternStream(8, 60000))
	bm := measure(branch.NewBimodal(4096), patternStream(8, 60000))
	if pr > 0.05 {
		t.Fatalf("perceptron rate %v on learnable patterns", pr)
	}
	if pr >= bm {
		t.Fatalf("perceptron (%v) should beat bimodal (%v) on patterned branches", pr, bm)
	}
}

func TestPerceptronLongHistoryAdvantage(t *testing.T) {
	// The perceptron's selling point: history lengths far beyond what a
	// pattern table can afford. A loop of trip 30 defeats a 10-bit gshare
	// but is linearly separable for a 40-bit perceptron.
	pr := measure(branch.NewPerceptron(256, 40), loopStream(30, 3000))
	gs := measure(branch.NewGshare(4096, 10), loopStream(30, 3000))
	if pr >= gs {
		t.Fatalf("perceptron (%v) should beat short-history gshare (%v) on long loops", pr, gs)
	}
	if pr > 0.02 {
		t.Fatalf("perceptron rate %v on constant-trip loop", pr)
	}
}

func TestPerceptronXORLimitation(t *testing.T) {
	// Linearly inseparable history functions (XOR/parity of two history
	// bits) defeat a perceptron but not a pattern table — the classic
	// limitation from the original paper.
	xorStream := func(yield func(uint64, bool)) {
		h1, h2 := false, false
		for i := 0; i < 60000; i++ {
			taken := h1 != h2
			yield(0x400040, taken)
			h1, h2 = h2, taken
		}
	}
	pr := measure(branch.NewPerceptron(256, 16), xorStream)
	gs := measure(branch.NewGshare(1024, 8), xorStream)
	if pr < gs {
		t.Fatalf("perceptron (%v) should not beat gshare (%v) on a parity branch", pr, gs)
	}
	if gs > 0.02 {
		t.Fatalf("gshare should learn the parity pattern, rate %v", gs)
	}
}

func TestPerceptronDeterministicAndResettable(t *testing.T) {
	p := branch.NewPerceptron(128, 12)
	first := measure(p, patternStream(8, 20000))
	p.Reset()
	second := measure(p, patternStream(8, 20000))
	if first != second {
		t.Fatalf("rates differ after reset: %v vs %v", first, second)
	}
}

func TestPerceptronSizeBits(t *testing.T) {
	p := branch.NewPerceptron(256, 16)
	// 256 rows x 17 weights x 8 bits + 16 history bits.
	if want := 256*17*8 + 16; p.SizeBits() != want {
		t.Fatalf("SizeBits = %d, want %d", p.SizeBits(), want)
	}
}

func TestPerceptronPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { branch.NewPerceptron(100, 16) }, // rows not a power of two
		func() { branch.NewPerceptron(128, 0) },
		func() { branch.NewPerceptron(128, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}
