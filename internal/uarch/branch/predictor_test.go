package branch_test

import (
	"strings"
	"testing"

	"interferometry/internal/uarch/branch"
	"interferometry/internal/xrand"
)

// measure runs a stream of (pc, outcome) pairs through a predictor and
// returns the misprediction rate.
func measure(p branch.Predictor, stream func(yield func(pc uint64, taken bool))) float64 {
	var total, wrong int
	stream(func(pc uint64, taken bool) {
		if p.Predict(pc) != taken {
			wrong++
		}
		p.Update(pc, taken)
		total++
	})
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}

// branchPC gives branch b a scattered but deterministic address in a 1MB
// text segment, like real code rather than a uniform stride. Scattered
// addresses can collide in small tables — that is the realistic aliasing
// the capacity tests rely on.
func branchPC(b int) uint64 {
	return 0x400000 + (xrand.Mix(uint64(b), 0xbc)&0xfffff)&^3
}

// densePC gives branch b a consecutive-slot address (no aliasing in any
// table with at least nBranches entries), for tests that isolate learning
// behaviour from aliasing.
func densePC(b int) uint64 { return 0x400000 + uint64(b)*4 }

// biasedStreamAt is biasedStream with a caller-chosen address map.
func biasedStreamAt(pcFor func(int) uint64, seed uint64, nBranches, length int, bias float64) func(func(uint64, bool)) {
	return func(yield func(uint64, bool)) {
		r := xrand.New(seed)
		for i := 0; i < length; i++ {
			b := i % nBranches
			taken := r.Bool(bias)
			if b%2 == 1 {
				taken = !taken
			}
			yield(pcFor(b), taken)
		}
	}
}

// biasedStream interleaves nBranches static branches with fixed biases.
func biasedStream(seed uint64, nBranches, length int, bias float64) func(func(uint64, bool)) {
	return func(yield func(uint64, bool)) {
		r := xrand.New(seed)
		for i := 0; i < length; i++ {
			b := i % nBranches
			pc := branchPC(b)
			taken := r.Bool(bias)
			if b%2 == 1 {
				taken = !taken
			}
			yield(pc, taken)
		}
	}
}

// patternStream gives each branch a short repeating pattern, learnable by
// history predictors but not by bimodal.
func patternStream(nBranches, length int) func(func(uint64, bool)) {
	return func(yield func(uint64, bool)) {
		counts := make([]int, nBranches)
		patterns := []uint64{0b0110, 0b1011, 0b0010, 0b1101}
		for i := 0; i < length; i++ {
			b := i % nBranches
			pc := branchPC(b)
			pat := patterns[b%len(patterns)]
			taken := pat>>(uint(counts[b])%4)&1 == 1
			counts[b]++
			yield(pc, taken)
		}
	}
}

// loopStream is a single loop branch with a constant trip count.
func loopStream(trip, iterations int) func(func(uint64, bool)) {
	return func(yield func(uint64, bool)) {
		for it := 0; it < iterations; it++ {
			for k := 0; k < trip; k++ {
				yield(0x400040, k < trip-1)
			}
		}
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	rate := measure(branch.NewBimodal(1024), biasedStreamAt(densePC, 1, 16, 50000, 0.95))
	if rate > 0.12 {
		t.Fatalf("bimodal mispredict rate %v on 95%% biased branches", rate)
	}
}

func TestBimodalStronglyBiased(t *testing.T) {
	rate := measure(branch.NewBimodal(1024), biasedStreamAt(densePC, 2, 16, 50000, 1.0))
	if rate > 0.001 {
		t.Fatalf("bimodal should be near-perfect on fully biased branches, rate %v", rate)
	}
}

func TestBimodalAliasingHurts(t *testing.T) {
	// Many opposite-biased branches in a tiny table alias destructively.
	smallRate := measure(branch.NewBimodal(16), biasedStream(3, 512, 80000, 1.0))
	bigRate := measure(branch.NewBimodal(8192), biasedStream(3, 512, 80000, 1.0))
	if smallRate <= bigRate {
		t.Fatalf("aliasing in a 16-entry table (%v) should exceed an 8K table (%v)", smallRate, bigRate)
	}
	if smallRate < 0.05 {
		t.Fatalf("expected heavy aliasing damage, got %v", smallRate)
	}
}

func TestGshareLearnsPatterns(t *testing.T) {
	gs := measure(branch.NewGshare(4096, 10), patternStream(8, 60000))
	bm := measure(branch.NewBimodal(4096), patternStream(8, 60000))
	if gs > 0.05 {
		t.Fatalf("gshare rate %v on learnable patterns", gs)
	}
	if gs >= bm {
		t.Fatalf("gshare (%v) should beat bimodal (%v) on patterned branches", gs, bm)
	}
}

func TestGAsLearnsPatterns(t *testing.T) {
	rate := measure(branch.NewGAs(6, 10), patternStream(8, 60000))
	if rate > 0.05 {
		t.Fatalf("GAs rate %v on learnable patterns", rate)
	}
}

func TestGAsBiggerIsBetter(t *testing.T) {
	// On an aliasing-heavy workload — branches visited in random order
	// with random per-branch directions, so global history carries no
	// signal — growing the GAs address space at fixed history length
	// reduces destructive aliasing between opposite-biased branches. This
	// is the premise of the paper's Figure 7 size sweep.
	aliasing := func(yield func(uint64, bool)) {
		r := xrand.New(400)
		const nBranches = 200
		for i := 0; i < 150000; i++ {
			b := r.Intn(nBranches)
			dir := xrand.Mix(uint64(b), 77)&1 == 1
			taken := dir
			if r.Bool(0.05) {
				taken = !taken
			}
			yield(branchPC(b), taken)
		}
	}
	small := measure(branch.NewGAs(2, 6), aliasing)
	large := measure(branch.NewGAs(6, 6), aliasing)
	if large >= small {
		t.Fatalf("16KB GAs (%v) should beat 2KB GAs (%v)", large, small)
	}
}

func TestPAsLearnsPerBranchPatterns(t *testing.T) {
	rate := measure(branch.NewPAs(1024, 4096, 10), patternStream(8, 60000))
	if rate > 0.05 {
		t.Fatalf("PAs rate %v on per-branch patterns", rate)
	}
}

func TestHybridAtLeastAsGoodAsComponentsOnMix(t *testing.T) {
	mk := func() (branch.Predictor, branch.Predictor, branch.Predictor) {
		g := branch.NewGshare(4096, 10)
		b := branch.NewBimodal(4096)
		h := branch.NewHybrid(branch.NewGshare(4096, 10), branch.NewBimodal(4096), 4096)
		return g, b, h
	}
	// Mixed stream: half patterned (favors gshare), half biased (either).
	mixed := func(yield func(uint64, bool)) {
		pat := patternStream(4, 40000)
		bia := biasedStream(7, 4, 40000, 0.98)
		pat(yield)
		bia(yield)
	}
	g, b, h := mk()
	gr := measure(g, mixed)
	br := measure(b, mixed)
	hr := measure(h, mixed)
	best := gr
	if br < best {
		best = br
	}
	if hr > best+0.02 {
		t.Fatalf("hybrid %v should track best component %v", hr, best)
	}
}

func TestLTAGELearnsLongHistory(t *testing.T) {
	// A loop with trip 40 defeats a 10-bit-history gshare but not TAGE's
	// geometric histories (or its loop predictor).
	lt := measure(branch.NewLTAGEDefault(), loopStream(40, 2000))
	gs := measure(branch.NewGshare(4096, 10), loopStream(40, 2000))
	if lt > 0.01 {
		t.Fatalf("L-TAGE rate %v on constant-trip loop", lt)
	}
	if lt >= gs {
		t.Fatalf("L-TAGE (%v) should beat short-history gshare (%v) on long loops", lt, gs)
	}
}

func TestLTAGEBeatsBimodalOnPatterns(t *testing.T) {
	lt := measure(branch.NewLTAGEDefault(), patternStream(32, 80000))
	bm := measure(branch.NewBimodal(16384), patternStream(32, 80000))
	if lt >= bm {
		t.Fatalf("L-TAGE (%v) should beat bimodal (%v)", lt, bm)
	}
	if lt > 0.05 {
		t.Fatalf("L-TAGE rate %v on short patterns", lt)
	}
}

func TestLTAGEHandlesBiasedBranches(t *testing.T) {
	rate := measure(branch.NewLTAGEDefault(), biasedStream(5, 64, 80000, 0.99))
	if rate > 0.05 {
		t.Fatalf("L-TAGE rate %v on 99%%-biased branches", rate)
	}
}

func TestLTAGEDeterministic(t *testing.T) {
	mk := func() float64 {
		return measure(branch.NewLTAGEDefault(), patternStream(16, 30000))
	}
	if mk() != mk() {
		t.Fatal("L-TAGE is not deterministic")
	}
}

func TestPredictorsDeterministicAfterReset(t *testing.T) {
	preds := []branch.Predictor{
		branch.NewBimodal(256),
		branch.NewGshare(1024, 8),
		branch.NewGAs(4, 8),
		branch.NewPAs(256, 1024, 8),
		branch.NewHybrid(branch.NewGshare(512, 6), branch.NewBimodal(512), 512),
		branch.NewLTAGE(branch.LTAGEConfig{NumTables: 4, LogTagged: 7, LogBase: 10}),
	}
	for _, p := range preds {
		first := measure(p, patternStream(8, 20000))
		p.Reset()
		second := measure(p, patternStream(8, 20000))
		if first != second {
			t.Errorf("%s: rate %v before reset, %v after", p.Name(), first, second)
		}
	}
}

func TestSizeBitsPositive(t *testing.T) {
	preds := []branch.Predictor{
		branch.NewBimodal(256),
		branch.NewGshare(1024, 8),
		branch.NewGAs(4, 8),
		branch.NewPAs(256, 1024, 8),
		branch.NewHybrid(branch.NewGshare(512, 6), branch.NewBimodal(512), 512),
		branch.NewLTAGEDefault(),
	}
	for _, p := range preds {
		if p.SizeBits() <= 0 {
			t.Errorf("%s: SizeBits = %d", p.Name(), p.SizeBits())
		}
		if p.Name() == "" {
			t.Error("predictor with empty name")
		}
	}
}

func TestGAsBudgetSizes(t *testing.T) {
	for _, kb := range []int{2, 4, 8, 16} {
		g := branch.GAsBudget(kb * 1024)
		bits := g.SizeBits()
		budget := kb*1024*8 + 64 // table budget plus the history register
		if bits > budget || bits < budget/2 {
			t.Errorf("GAsBudget(%dKB) uses %d bits, budget %d", kb, bits, budget)
		}
		if !strings.Contains(g.Name(), "KB") {
			t.Errorf("budget GAs name %q", g.Name())
		}
	}
}

func TestStaticPredictors(t *testing.T) {
	at, nt := branch.AlwaysTaken{}, branch.NeverTaken{}
	if !at.Predict(1) || nt.Predict(1) {
		t.Fatal("static predictions wrong")
	}
	at.Update(1, false)
	nt.Update(1, true)
	if !at.Predict(1) || nt.Predict(1) {
		t.Fatal("static predictors should ignore updates")
	}
}

func TestPerfectIsOracle(t *testing.T) {
	var p branch.Predictor = branch.Perfect{}
	if _, ok := p.(branch.Oracle); !ok {
		t.Fatal("Perfect must implement Oracle")
	}
	if _, ok := branch.Predictor(branch.NewBimodal(16)).(branch.Oracle); ok {
		t.Fatal("Bimodal must not be an Oracle")
	}
}

func TestConfigSpace(t *testing.T) {
	fs := branch.ConfigSpace(branch.PaperConfigCount)
	if len(fs) != branch.PaperConfigCount {
		t.Fatalf("ConfigSpace returned %d configurations, want %d", len(fs), branch.PaperConfigCount)
	}
	names := map[string]bool{}
	for _, f := range fs {
		if names[f.Name] {
			t.Errorf("duplicate configuration %q", f.Name)
		}
		names[f.Name] = true
		p := f.New()
		if p == nil {
			t.Fatalf("factory %q returned nil", f.Name)
		}
		// Exercise briefly.
		p.Predict(0x400000)
		p.Update(0x400000, true)
	}
}

func TestConfigSpaceSpansAccuracy(t *testing.T) {
	// The sweep must include both terrible and excellent predictors.
	fs := branch.ConfigSpace(branch.PaperConfigCount)
	var rates []float64
	stream := patternStream(64, 20000)
	for _, f := range fs[:len(fs):len(fs)] {
		rates = append(rates, measure(f.New(), stream))
	}
	lo, hi := rates[0], rates[0]
	for _, r := range rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo < 0.2 {
		t.Fatalf("config space accuracy range [%v,%v] too narrow", lo, hi)
	}
}

func TestPaperPredictors(t *testing.T) {
	ps := branch.PaperPredictors()
	if len(ps) != 5 {
		t.Fatalf("PaperPredictors returned %d entries", len(ps))
	}
	if ps[4].Name != "l-tage" {
		t.Fatalf("last paper predictor is %q", ps[4].Name)
	}
}

func TestBTBBasic(t *testing.T) {
	b := branch.NewBTB(64, 4)
	if b.Predict(0x1000, 0x2000) {
		t.Fatal("cold BTB lookup predicted correctly")
	}
	if !b.Predict(0x1000, 0x2000) {
		t.Fatal("trained BTB lookup failed")
	}
	// Target change: wrong-target misprediction, then retrained.
	if b.Predict(0x1000, 0x3000) {
		t.Fatal("stale target counted as correct")
	}
	if !b.Predict(0x1000, 0x3000) {
		t.Fatal("BTB did not retrain target")
	}
	if b.Mispredictions() != 2 || b.Hits() != 2 {
		t.Fatalf("mispredicts %d hits %d", b.Mispredictions(), b.Hits())
	}
}

func TestBTBCapacity(t *testing.T) {
	b := branch.NewBTB(16, 2) // 32 entries
	// Train 32 monomorphic call sites at irregular addresses (regular
	// power-of-two strides alias pathologically in a real BTB too), then
	// they should essentially all hit.
	site := func(i uint64) uint64 { return 0x1000 + i*52 }
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 32; i++ {
			b.Predict(site(i), 0x9000+i)
		}
	}
	start := b.Hits()
	for i := uint64(0); i < 32; i++ {
		if !b.Predict(site(i), 0x9000+i) {
			// Allow a few conflicts from hashing, but count them.
			continue
		}
	}
	if b.Hits()-start < 24 {
		t.Fatalf("only %d/32 trained sites hit", b.Hits()-start)
	}
}

func TestBTBReset(t *testing.T) {
	b := branch.NewBTB(16, 2)
	b.Predict(0x1000, 0x2000)
	b.Reset()
	if b.Hits() != 0 || b.Mispredictions() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if b.Predict(0x1000, 0x2000) {
		t.Fatal("Reset did not clear entries")
	}
}

func TestLTAGESizeScales(t *testing.T) {
	small := branch.NewLTAGE(branch.LTAGEConfig{NumTables: 4, LogTagged: 7, LogBase: 10})
	big := branch.NewLTAGEDefault()
	if small.SizeBits() >= big.SizeBits() {
		t.Fatalf("small L-TAGE %d bits >= default %d bits", small.SizeBits(), big.SizeBits())
	}
}

func BenchmarkBimodal(b *testing.B) {
	p := branch.NewBimodal(4096)
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%256)*32
		taken := r.Bool(0.7)
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

func BenchmarkGshare(b *testing.B) {
	p := branch.NewGshare(4096, 12)
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%256)*32
		taken := r.Bool(0.7)
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

func BenchmarkLTAGE(b *testing.B) {
	p := branch.NewLTAGEDefault()
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%256)*32
		taken := r.Bool(0.7)
		p.Predict(pc)
		p.Update(pc, taken)
	}
}
