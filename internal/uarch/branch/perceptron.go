package branch

import "fmt"

// Perceptron is Jiménez & Lin's perceptron branch predictor (HPCA 2001)
// — the second author of the interferometry paper is its inventor, and it
// is exactly the kind of "hypothetical predictor" the paper's tool exists
// to evaluate (§7.2.3). A table of perceptrons is indexed by the branch
// address; each predicts as the sign of a dot product between its weights
// and the global history, and trains on mispredictions or low-confidence
// correct predictions.
type Perceptron struct {
	weights  []int16 // nRows x (histLen+1); weights[r*(h+1)] is the bias
	histLen  int
	rows     int
	theta    int32 // training threshold: 1.93*h + 14 (the paper's fit)
	ghr      uint64
	name     string
	lastOut  int32
	lastPC   uint64
	lastPred bool
}

// NewPerceptron builds a perceptron predictor with the given table rows
// (power of two) and history length (1..63).
func NewPerceptron(rows, histLen int) *Perceptron {
	checkPow2(rows, "perceptron rows")
	if histLen < 1 || histLen > 63 {
		panic("branch: perceptron history length out of range")
	}
	return &Perceptron{
		weights: make([]int16, rows*(histLen+1)),
		histLen: histLen,
		rows:    rows,
		theta:   int32(1.93*float64(histLen) + 14),
		name:    fmt.Sprintf("perceptron-%dx%d", rows, histLen),
	}
}

func (p *Perceptron) row(pc uint64) int {
	return int(hashPC(pc) & uint64(p.rows-1))
}

// output computes the dot product for the branch at pc.
func (p *Perceptron) output(pc uint64) int32 {
	base := p.row(pc) * (p.histLen + 1)
	out := int32(p.weights[base]) // bias weight
	h := p.ghr
	for i := 1; i <= p.histLen; i++ {
		if h&1 == 1 {
			out += int32(p.weights[base+i])
		} else {
			out -= int32(p.weights[base+i])
		}
		h >>= 1
	}
	return out
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool {
	p.lastPC = pc
	p.lastOut = p.output(pc)
	p.lastPred = p.lastOut >= 0
	return p.lastPred
}

// Update implements Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	if pc != p.lastPC {
		p.Predict(pc)
	}
	out, pred := p.lastOut, p.lastPred
	// Train on a misprediction or when confidence is below theta.
	if pred != taken || abs32(out) <= p.theta {
		base := p.row(pc) * (p.histLen + 1)
		t := int16(-1)
		if taken {
			t = 1
		}
		p.weights[base] = satAdd16(p.weights[base], t)
		h := p.ghr
		for i := 1; i <= p.histLen; i++ {
			x := int16(-1)
			if h&1 == 1 {
				x = 1
			}
			// w_i += t*x_i: agreement strengthens, disagreement weakens.
			p.weights[base+i] = satAdd16(p.weights[base+i], t*x)
			h >>= 1
		}
	}
	p.ghr = p.ghr<<1 | boolBit(taken)
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return p.name }

// SizeBits implements Predictor. Weights are 8-bit in hardware proposals;
// we account 8 bits each even though the implementation stores int16 for
// convenience (saturation keeps values within int8 range).
func (p *Perceptron) SizeBits() int {
	return p.rows*(p.histLen+1)*8 + p.histLen
}

// Reset implements Predictor.
func (p *Perceptron) Reset() {
	for i := range p.weights {
		p.weights[i] = 0
	}
	p.ghr = 0
	p.lastPC, p.lastOut, p.lastPred = 0, 0, false
}

// satAdd16 saturates weights to the hardware's 8-bit signed range.
func satAdd16(w, d int16) int16 {
	v := w + d
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return v
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// Compile-time interface check.
var _ Predictor = (*Perceptron)(nil)
