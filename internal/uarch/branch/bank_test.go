package branch

import (
	"math/rand"
	"testing"
)

// TestXeonBankMatchesScalar pins every XeonBank lane bit-identical to a
// private NewXeonE5440 instance: PredictUpdate must return exactly what
// scalar Predict would, and train exactly as scalar Update does, under
// an interleaved multi-lane branch stream with heavy PC aliasing.
func TestXeonBankMatchesScalar(t *testing.T) {
	const lanes = 6
	bank := NewXeonBank(lanes)
	refs := make([]*Hybrid, lanes)
	for k := range refs {
		refs[k] = NewXeonE5440()
	}
	rng := rand.New(rand.NewSource(7))
	pcs := make([]uint64, 64)
	for i := range pcs {
		pcs[i] = rng.Uint64() & (1<<44 - 1)
	}
	for op := 0; op < 300000; op++ {
		k := rng.Intn(lanes)
		pc := pcs[rng.Intn(len(pcs))]
		taken := rng.Intn(3) != 0
		want := refs[k].Predict(pc)
		refs[k].Update(pc, taken)
		if got := bank.PredictUpdate(k, pc, taken); got != want {
			t.Fatalf("op %d lane %d pc %#x: bank predicted %v, scalar %v", op, k, pc, got, want)
		}
		if op%50000 == 0 {
			bank.Reset()
			for _, r := range refs {
				r.Reset()
			}
		}
	}
}

// TestBTBBankMatchesScalar pins every BTBBank lane bit-identical to a
// private scalar BTB: same predicted/mispredicted outcomes, including
// wrong-target corrections and LRU evictions.
func TestBTBBankMatchesScalar(t *testing.T) {
	const lanes = 4
	for _, geom := range [][2]int{{512, 4}, {16, 2}, {8, 1}} {
		sets, ways := geom[0], geom[1]
		bank, err := NewBTBBank(sets, ways, lanes)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*BTB, lanes)
		for k := range refs {
			refs[k] = NewBTB(sets, ways)
		}
		rng := rand.New(rand.NewSource(11))
		pcs := make([]uint64, 48)
		targets := make([]uint64, 8)
		for i := range pcs {
			pcs[i] = rng.Uint64() & (1<<44 - 1)
		}
		for i := range targets {
			targets[i] = rng.Uint64() & (1<<44 - 1)
		}
		for op := 0; op < 200000; op++ {
			k := rng.Intn(lanes)
			pc := pcs[rng.Intn(len(pcs))]
			target := targets[rng.Intn(len(targets))]
			want := refs[k].Predict(pc, target)
			if got := bank.PredictUpdate(k, pc, target); got != want {
				t.Fatalf("%dx%d op %d lane %d pc %#x: bank %v, scalar %v", sets, ways, op, k, pc, got, want)
			}
			if op%60000 == 0 {
				bank.Reset()
				for _, r := range refs {
					r.Reset()
				}
			}
		}
	}
}

func TestBTBBankRejectsWideGeometry(t *testing.T) {
	if _, err := NewBTBBank(64, 16, 2); err == nil {
		t.Fatal("NewBTBBank accepted a 16-way geometry")
	}
	if _, err := NewBTBBank(63, 4, 2); err == nil {
		t.Fatal("NewBTBBank accepted a non-power-of-two set count")
	}
}
