package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestBankMatchesCache pins every Bank lane bit-identical to a private
// scalar Cache driven by the same operation sequence: same hit results,
// same counters, same probe outcomes — across geometries, interleaved
// lanes, repeat-access runs (the memo fast path), prefetches and
// mid-stream flushes.
func TestBankMatchesCache(t *testing.T) {
	geoms := []Config{
		{Name: "l1", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 8},
		{Name: "small", SizeBytes: 1024, LineBytes: 64, Ways: 4},
		{Name: "direct", SizeBytes: 4096, LineBytes: 64, Ways: 1},
		{Name: "tiny-line", SizeBytes: 2048, LineBytes: 16, Ways: 2},
	}
	const lanes = 5
	for _, cfg := range geoms {
		t.Run(cfg.Name, func(t *testing.T) {
			bank, err := NewBank(cfg, lanes)
			if err != nil {
				t.Fatal(err)
			}
			refs := make([]*Cache, lanes)
			for k := range refs {
				refs[k] = New(cfg)
			}
			rng := rand.New(rand.NewSource(42))
			// A small address pool forces hits, conflicts and repeats; a
			// run-length knob exercises the repeat-access memo. The mask
			// keeps addresses under the tightest geometry's AddrLimit
			// ("small" has 4 sets: 2^(31+6+2)).
			pool := make([]uint64, 96)
			for i := range pool {
				pool[i] = rng.Uint64() & (1<<38 - 1)
			}
			addr := pool[0]
			for op := 0; op < 200000; op++ {
				k := rng.Intn(lanes)
				if rng.Intn(4) != 0 { // 3/4: fresh address, else repeat last
					addr = pool[rng.Intn(len(pool))] + uint64(rng.Intn(4)*cfg.LineBytes)
				}
				switch r := rng.Intn(100); {
				case r < 88:
					if got, want := bank.Access(k, addr), refs[k].Access(addr); got != want {
						t.Fatalf("op %d lane %d addr %#x: bank access %v, cache %v", op, k, addr, got, want)
					}
				case r < 94:
					bank.Prefetch(k, addr)
					refs[k].Prefetch(addr)
				case r < 99:
					if got, want := bank.Probe(k, addr), refs[k].Probe(addr); got != want {
						t.Fatalf("op %d lane %d addr %#x: bank probe %v, cache %v", op, k, addr, got, want)
					}
				default:
					bank.Flush()
					for _, c := range refs {
						c.Flush()
					}
				}
				if bank.Hits(k) != refs[k].Hits() || bank.Misses(k) != refs[k].Misses() {
					t.Fatalf("op %d lane %d: bank counters %d/%d, cache %d/%d",
						op, k, bank.Hits(k), bank.Misses(k), refs[k].Hits(), refs[k].Misses())
				}
			}
		})
	}
}

func TestBankRejectsWideGeometry(t *testing.T) {
	_, err := NewBank(Config{Name: "wide", SizeBytes: 64 * 1024, LineBytes: 64, Ways: 16}, 2)
	if err == nil {
		t.Fatal("NewBank accepted a 16-way geometry the packed order word cannot hold")
	}
}

func TestBankFlushRestoresPowerOn(t *testing.T) {
	cfg := Config{Name: "f", SizeBytes: 1024, LineBytes: 64, Ways: 4}
	bank, err := NewBank(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewBank(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		bank.Access(i%2, uint64(i*64))
	}
	bank.Flush()
	for i := 0; i < 500; i++ {
		a := uint64((i * 7 % 40) * 64)
		if got, want := bank.Access(i%2, a), fresh.Access(i%2, a); got != want {
			t.Fatalf("post-flush access %d diverged from fresh bank", i)
		}
	}
}

func ExampleBank() {
	bank, _ := NewBank(Config{Name: "demo", SizeBytes: 1024, LineBytes: 64, Ways: 2}, 2)
	fmt.Println(bank.Access(0, 0x1000), bank.Access(0, 0x1000), bank.Access(1, 0x1000))
	// Output: false true false
}
