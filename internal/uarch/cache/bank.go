package cache

import (
	"fmt"
	"math/bits"
)

// Bank is K logical caches of identical geometry walked in lockstep by a
// batched replay: lane k models the cache of layout k. Semantically each
// lane is exactly a Cache — same true-LRU sets, same hit/miss accounting —
// but the state is laid out for the batch walk and the per-access path is
// leaner than Cache.Access:
//
//   - the valid bit is packed into a 32-bit tag word (tag<<1|1, zero =
//     invalid), so a lookup touches one array of half the width the
//     scalar Cache uses — K lanes of L1 tags stay resident in the host's
//     cache hierarchy;
//   - each set's tags are stored physically in MRU→LRU order, so the
//     common most-recently-used hit is a single compare, a deeper hit is
//     a small copy-shift, and the eviction victim is simply the last
//     slot — there is no separate recency list to maintain;
//   - a per-lane last-line memo short-circuits the common repeat access:
//     if lane k's previous access was to this very line and hit, the line
//     is MRU in its set, so the re-access is a hit whose move-to-front is
//     the identity — only the hit counter needs touching.
//
// Every fast path is behaviorally identical to Cache, which the
// equivalence tests pin lane by lane. One representational caveat: the
// 32-bit packed tag bounds the address space — accesses must stay below
// AddrLimit (2^43 for a 64-set, 64-byte-line geometry), far above any
// simulated address space; an access beyond the limit panics rather than
// silently aliasing, and batched callers pre-check their executables and
// heap placements against AddrLimit and fall back to the scalar path.
// The MRU-order representation caps Bank geometry at 8 ways to keep the
// copy-shift small; wider geometries also fall back to the scalar path.
type Bank struct {
	cfg       Config
	lineShift uint
	tagShift  uint
	setMask   uint64
	ways      int
	sets      int
	lanes     int
	// tags[(k*sets+set)*ways + i] holds the tag<<1|1 of the set's i-th
	// most recently used way; 0 means invalid. The slice is the recency
	// order: a hit moves its tag to slot 0, a miss shifts the set down
	// one slot (dropping the LRU tag in the last slot) and installs at 0.
	tags []uint32

	hits, misses []uint64

	// memo[k] implements the per-lane repeat-access fast path: it holds
	// line<<1|1 after a hit on line, and an even value (never matching a
	// lookup key, which is always odd) whenever the memo must not be
	// trusted — after a miss, a flush, or a prefetch, which can reorder
	// or evict lines behind the memo's back. The single packed word keeps
	// the Access fast path small.
	memo []uint64
}

// NewBank builds a bank of lanes caches with the given geometry. Unlike
// New it returns an error instead of panicking: batched callers fall back
// to the scalar path when a geometry (more than 8 ways) cannot be banked.
func NewBank(cfg Config, lanes int) (*Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lanes <= 0 {
		return nil, fmt.Errorf("cache %s: bank needs at least one lane", cfg.Name)
	}
	if cfg.Ways > 8 {
		return nil, fmt.Errorf("cache %s: bank supports at most 8 ways, got %d", cfg.Name, cfg.Ways)
	}
	sets := cfg.Sets()
	b := &Bank{
		cfg:       cfg,
		lanes:     lanes,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		tagShift:  uint(bits.TrailingZeros(uint(sets))),
		setMask:   uint64(sets - 1),
		ways:      cfg.Ways,
		sets:      sets,
		tags:      make([]uint32, lanes*sets*cfg.Ways),
		hits:      make([]uint64, lanes),
		misses:    make([]uint64, lanes),
		memo:      make([]uint64, lanes),
	}
	return b, nil
}

// Config returns the per-lane cache geometry.
func (b *Bank) Config() Config { return b.cfg }

// Lanes returns the lane count.
func (b *Bank) Lanes() int { return b.lanes }

// AddrLimit returns the first address the bank's 32-bit packed tags
// cannot represent. Accessing an address at or above the limit panics;
// callers needing larger addresses must use the scalar Cache.
func (b *Bank) AddrLimit() uint64 {
	return 1 << (31 + b.lineShift + b.tagShift)
}

// tagFor packs the lookup tag for line, panicking if the address is
// beyond the 32-bit representation (see AddrLimit).
func (b *Bank) tagFor(line uint64) uint32 {
	w := line >> b.tagShift
	if w>>31 != 0 {
		panic("cache: address beyond bank AddrLimit")
	}
	return uint32(w)<<1 | 1
}

// Access looks up the line containing addr in lane k, installing it on a
// miss, and reports whether it hit. It is bit-identical to
// Cache.Access on lane k's private cache.
func (b *Bank) Access(k int, addr uint64) bool {
	key := addr>>b.lineShift<<1 | 1
	if b.memo[k] == key {
		// The lane's previous access was this line and hit: the line is
		// MRU, the move-to-front is the identity, only the counter moves.
		b.hits[k]++
		return true
	}
	return b.accessSlow(k, key)
}

// accessSlow is the memo-miss path: set walk, then memo and counter
// updates. key is line<<1|1.
func (b *Bank) accessSlow(k int, key uint64) bool {
	hit := b.access(k, key>>1)
	if hit {
		b.memo[k] = key
		b.hits[k]++
	} else {
		b.memo[k] = key &^ 1
		b.misses[k]++
	}
	return hit
}

// access performs the set walk for line in lane k without touching the
// counters or the memo.
func (b *Bank) access(k int, line uint64) bool {
	want := b.tagFor(line)
	i := (k*b.sets + int(line&b.setMask)) * b.ways
	t := b.tags[i : i+b.ways : i+b.ways]
	if t[0] == want {
		return true
	}
	for j := 1; j < b.ways; j++ {
		if t[j] == want {
			// Move to MRU slot 0, shifting the more recent tags down.
			copy(t[1:j+1], t[:j])
			t[0] = want
			return true
		}
	}
	// Miss: the shift drops the LRU tag in the last slot.
	copy(t[1:], t[:b.ways-1])
	t[0] = want
	return false
}

// AccessRow performs one access per lane at a shared offset from
// per-lane base addresses — the batched replay's memory event, where
// every lane touches the same object at the same offset but at its own
// placement. Bit i of the returned mask is set iff lane i missed. At
// most 64 lanes (one mask bit per lane); len(bases) must not exceed
// Lanes().
//
// The 8-way walk is open-coded in the lane loop (as in AccessSeq): the
// per-lane set walks are independent, and keeping them call-free in one
// loop body lets the CPU overlap the tag loads of different lanes.
func (b *Bank) AccessRow(bases []uint64, off uint64) uint64 {
	var miss uint64
	if b.ways != 8 {
		for k := range bases {
			key := (bases[k]+off)>>b.lineShift<<1 | 1
			if b.memo[k] == key {
				b.hits[k]++
				continue
			}
			if !b.accessSlow(k, key) {
				miss |= 1 << uint(k)
			}
		}
		return miss
	}
	// The geometry fields are hoisted into locals: the tag stores below
	// keep the compiler from proving b's fields loop invariant, and the
	// reloads dominate the walk otherwise.
	var (
		lineShift = b.lineShift
		tagShift  = b.tagShift
		setMask   = b.setMask
		sets      = b.sets
		tags      = b.tags
		memo      = b.memo
		hits      = b.hits
		misses    = b.misses
	)
	for k := range bases {
		key := (bases[k]+off)>>lineShift<<1 | 1
		if memo[k] == key {
			hits[k]++
			continue
		}
		line := key >> 1
		w := line >> tagShift
		if w>>31 != 0 {
			panic("cache: address beyond bank AddrLimit")
		}
		want := uint32(w)<<1 | 1
		t := (*[8]uint32)(tags[(k*sets+int(line&setMask))*8:])
		hit := true
		switch want {
		case t[0]:
		case t[1]:
			t[1] = t[0]
			t[0] = want
		case t[2]:
			t[2], t[1] = t[1], t[0]
			t[0] = want
		case t[3]:
			t[3], t[2], t[1] = t[2], t[1], t[0]
			t[0] = want
		case t[4]:
			t[4], t[3], t[2], t[1] = t[3], t[2], t[1], t[0]
			t[0] = want
		case t[5]:
			t[5], t[4], t[3], t[2], t[1] = t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		case t[6]:
			t[6], t[5], t[4], t[3], t[2], t[1] = t[5], t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		case t[7]:
			t[7], t[6], t[5], t[4], t[3], t[2], t[1] = t[6], t[5], t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		default:
			hit = false
			t[7], t[6], t[5], t[4], t[3], t[2], t[1] = t[6], t[5], t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		}
		if hit {
			memo[k] = key
			hits[k]++
		} else {
			memo[k] = key &^ 1
			misses[k]++
			miss |= 1 << uint(k)
		}
	}
	return miss
}

// AccessSeq performs n accesses to consecutive lines starting at the
// line containing addr, all in lane k — the batched replay's
// instruction-fetch walk over a block's code lines. Bit i of the
// returned mask is set iff the i-th line missed. n must not exceed 64.
func (b *Bank) AccessSeq(k int, addr uint64, n int32) uint64 {
	var miss uint64
	key := addr>>b.lineShift<<1 | 1
	if b.ways != 8 {
		for i := int32(0); i < n; i++ {
			if b.memo[k] == key {
				b.hits[k]++
			} else if !b.accessSlow(k, key) {
				miss |= 1 << uint(i)
			}
			key += 2
		}
		return miss
	}
	// Hoisted like AccessRow: the fetch walk is the other per-event loop.
	var (
		tagShift = b.tagShift
		setMask  = b.setMask
		sets     = b.sets
		tags     = b.tags
		memoK    = b.memo[k]
		hitsK    = b.hits[k]
		missesK  = b.misses[k]
	)
	for i := int32(0); i < n; i++ {
		if memoK == key {
			hitsK++
			key += 2
			continue
		}
		line := key >> 1
		w := line >> tagShift
		if w>>31 != 0 {
			panic("cache: address beyond bank AddrLimit")
		}
		want := uint32(w)<<1 | 1
		t := (*[8]uint32)(tags[(k*sets+int(line&setMask))*8:])
		hit := true
		switch want {
		case t[0]:
		case t[1]:
			t[1] = t[0]
			t[0] = want
		case t[2]:
			t[2], t[1] = t[1], t[0]
			t[0] = want
		case t[3]:
			t[3], t[2], t[1] = t[2], t[1], t[0]
			t[0] = want
		case t[4]:
			t[4], t[3], t[2], t[1] = t[3], t[2], t[1], t[0]
			t[0] = want
		case t[5]:
			t[5], t[4], t[3], t[2], t[1] = t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		case t[6]:
			t[6], t[5], t[4], t[3], t[2], t[1] = t[5], t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		case t[7]:
			t[7], t[6], t[5], t[4], t[3], t[2], t[1] = t[6], t[5], t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		default:
			hit = false
			t[7], t[6], t[5], t[4], t[3], t[2], t[1] = t[6], t[5], t[4], t[3], t[2], t[1], t[0]
			t[0] = want
		}
		if hit {
			memoK = key
			hitsK++
		} else {
			memoK = key &^ 1
			missesK++
			miss |= 1 << uint(i)
		}
		key += 2
	}
	b.memo[k] = memoK
	b.hits[k] = hitsK
	b.misses[k] = missesK
	return miss
}

// FetchRows performs one AccessSeq per lane in a single call: lane i
// walks lineNs[i] consecutive lines starting at the line containing
// firsts[i], and masks[i] receives its per-line miss mask (bit j set iff
// the j-th line missed). Every lineNs[i] must be at most 64; callers
// with wider fetches chunk through AccessSeq instead. The batched
// replay's fetch loop calls this once per trace block — the hottest call
// site in a batched campaign — so the per-call setup (field loads the
// tag stores would otherwise force the compiler to re-read per line) is
// paid once for the whole batch instead of once per lane.
func (b *Bank) FetchRows(firsts []uint64, lineNs []int32, masks []uint64) {
	if b.ways != 8 {
		for ki := range firsts {
			masks[ki] = b.AccessSeq(ki, firsts[ki], lineNs[ki])
		}
		return
	}
	var (
		lineShift = b.lineShift
		tagShift  = b.tagShift
		setMask   = b.setMask
		sets      = b.sets
		tags      = b.tags
		memo      = b.memo
		hits      = b.hits
		misses    = b.misses
	)
	for ki := range firsts {
		var miss uint64
		key := firsts[ki]>>lineShift<<1 | 1
		n := lineNs[ki]
		memoK := memo[ki]
		hitsK := hits[ki]
		missesK := misses[ki]
		for i := int32(0); i < n; i++ {
			if memoK == key {
				hitsK++
				key += 2
				continue
			}
			line := key >> 1
			w := line >> tagShift
			if w>>31 != 0 {
				panic("cache: address beyond bank AddrLimit")
			}
			want := uint32(w)<<1 | 1
			t := (*[8]uint32)(tags[(ki*sets+int(line&setMask))*8:])
			hit := true
			switch want {
			case t[0]:
			case t[1]:
				t[1] = t[0]
				t[0] = want
			case t[2]:
				t[2], t[1] = t[1], t[0]
				t[0] = want
			case t[3]:
				t[3], t[2], t[1] = t[2], t[1], t[0]
				t[0] = want
			case t[4]:
				t[4], t[3], t[2], t[1] = t[3], t[2], t[1], t[0]
				t[0] = want
			case t[5]:
				t[5], t[4], t[3], t[2], t[1] = t[4], t[3], t[2], t[1], t[0]
				t[0] = want
			case t[6]:
				t[6], t[5], t[4], t[3], t[2], t[1] = t[5], t[4], t[3], t[2], t[1], t[0]
				t[0] = want
			case t[7]:
				t[7], t[6], t[5], t[4], t[3], t[2], t[1] = t[6], t[5], t[4], t[3], t[2], t[1], t[0]
				t[0] = want
			default:
				hit = false
				t[7], t[6], t[5], t[4], t[3], t[2], t[1] = t[6], t[5], t[4], t[3], t[2], t[1], t[0]
				t[0] = want
			}
			if hit {
				memoK = key
				hitsK++
			} else {
				memoK = key &^ 1
				missesK++
				miss |= 1 << uint(i)
			}
			key += 2
		}
		memo[ki] = memoK
		hits[ki] = hitsK
		misses[ki] = missesK
		masks[ki] = miss
	}
}

// Probe reports whether addr currently hits in lane k, without updating
// state or counters.
func (b *Bank) Probe(k int, addr uint64) bool {
	line := addr >> b.lineShift
	want := b.tagFor(line)
	i := (k*b.sets + int(line&b.setMask)) * b.ways
	t := b.tags[i : i+b.ways : i+b.ways]
	for j := 0; j < b.ways; j++ {
		if t[j] == want {
			return true
		}
	}
	return false
}

// Prefetch installs the line containing addr into lane k without touching
// the hit/miss counters, like Cache.Prefetch. It invalidates the lane's
// repeat-access memo: the prefetch may evict or reorder the memoized
// line's set.
func (b *Bank) Prefetch(k int, addr uint64) {
	b.access(k, addr>>b.lineShift)
	b.memo[k] = 0
}

// Hits returns lane k's hit count.
func (b *Bank) Hits(k int) uint64 { return b.hits[k] }

// Misses returns lane k's miss count.
func (b *Bank) Misses(k int) uint64 { return b.misses[k] }

// Accesses returns lane k's hits+misses.
func (b *Bank) Accesses(k int) uint64 { return b.hits[k] + b.misses[k] }

// AddHits accounts n repeat accesses that the caller has proven are hits
// with identity move-to-front — re-accesses of a line it just accessed in
// lane k with no intervening access. The batch walk uses this to bulk
// count the fetch blocks beyond the first in each cache line.
func (b *Bank) AddHits(k int, n uint64) { b.hits[k] += n }

// Flush invalidates all lines and zeroes all counters in every lane,
// restoring the power-on state.
func (b *Bank) Flush() {
	for i := range b.tags {
		b.tags[i] = 0
	}
	for k := 0; k < b.lanes; k++ {
		b.hits[k], b.misses[k] = 0, 0
		b.memo[k] = 0
	}
}
