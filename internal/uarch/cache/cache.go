// Package cache implements the set-associative cache models of the
// machine substrate: the Xeon E5440's 32KB 8-way L1 instruction and data
// caches and its large shared L2 (§5.4). Caches are address-indexed — "a
// 128-set instruction cache with 64 byte blocks would likely use bits 6
// through 12 of the instruction address as the set index" (§4.1) — which
// is precisely why code and data placement perturb their miss counts.
package cache

import (
	"errors"
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
}

// Validate checks the geometry: sizes must be powers of two and must
// divide evenly into sets.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return errors.New("cache: nonpositive geometry")
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Ways
	if sets == 0 || sets*c.Ways != lines {
		return fmt.Errorf("cache %s: %d lines not divisible into %d ways", c.Name, lines, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Ways }

// Indexer maps addresses to line and set coordinates for a geometry
// without carrying any cache state. Replay engines that keep per-set
// bookkeeping outside a Cache instance (the delta engine's apply
// windows) share one per level; its indexing is identical to Cache's.
type Indexer struct {
	lineShift uint
	setMask   uint64
}

// Indexer returns the address indexer for the geometry. Like New, it
// panics on invalid geometry.
func (c Config) Indexer() Indexer {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return Indexer{
		lineShift: uint(bits.TrailingZeros(uint(c.LineBytes))),
		setMask:   uint64(c.Sets() - 1),
	}
}

// Line returns the index of the cache line containing addr.
func (ix Indexer) Line(addr uint64) uint64 { return addr >> ix.lineShift }

// Set returns the set index the line containing addr maps to.
func (ix Indexer) Set(addr uint64) uint64 { return addr >> ix.lineShift & ix.setMask }

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      int
	// tags[set*ways+way]; order[set*ways+i] lists ways from MRU to LRU.
	tags  []uint64
	valid []bool
	order []uint8

	hits, misses uint64
}

// New builds a cache. It panics on invalid geometry (configs are
// programmer-supplied constants, not user input).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		ways:      cfg.Ways,
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		order:     make([]uint8, sets*cfg.Ways),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.order[s*cfg.Ways+w] = uint8(w)
		}
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up the line containing addr, installing it on a miss, and
// reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.setMask+1)))
	base := set * c.ways
	ord := c.order[base : base+c.ways]
	// Search in MRU order.
	for i := 0; i < c.ways; i++ {
		w := int(ord[i])
		if c.valid[base+w] && c.tags[base+w] == tag {
			// Move to front.
			copy(ord[1:], ord[:i])
			ord[0] = uint8(w)
			c.hits++
			return true
		}
	}
	// Miss: evict LRU way.
	victim := int(ord[c.ways-1])
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	copy(ord[1:], ord[:c.ways-1])
	ord[0] = uint8(victim)
	c.misses++
	return false
}

// Probe reports whether addr currently hits, without updating state or
// counters.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.setMask+1)))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns hits+misses.
func (c *Cache) Accesses() uint64 { return c.hits + c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.Accesses() == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.Accesses())
}

// ResetCounters zeroes the hit/miss counters without flushing contents,
// for warmup-then-measure protocols.
func (c *Cache) ResetCounters() { c.hits, c.misses = 0, 0 }

// Flush invalidates all lines and zeroes counters.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.ResetCounters()
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// LinesSpanned returns how many cache lines the byte range [addr,
// addr+size) touches.
func (c *Cache) LinesSpanned(addr, size uint64) int {
	if size == 0 {
		return 0
	}
	first := addr >> c.lineShift
	last := (addr + size - 1) >> c.lineShift
	return int(last - first + 1)
}

// Prefetch installs the line containing addr without touching the
// hit/miss counters — the behaviour of a hardware prefetcher whose
// traffic is not architecturally visible.
func (c *Cache) Prefetch(addr uint64) {
	hits, misses := c.hits, c.misses
	c.Access(addr)
	c.hits, c.misses = hits, misses
}
