package cache_test

import (
	"testing"
	"testing/quick"

	"interferometry/internal/uarch/cache"
	"interferometry/internal/xrand"
)

func small() *cache.Cache {
	// 4 sets, 2 ways, 64B lines = 512B.
	return cache.New(cache.Config{Name: "t", SizeBytes: 512, LineBytes: 64, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	bad := []cache.Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 512, LineBytes: 48, Ways: 2},     // line not pow2
		{SizeBytes: 500, LineBytes: 64, Ways: 2},     // size not multiple
		{SizeBytes: 512, LineBytes: 64, Ways: 3},     // lines not divisible
		{SizeBytes: 64 * 6, LineBytes: 64, Ways: 2},  // 3 sets, not pow2
		{SizeBytes: 512, LineBytes: 64, Ways: -1},    // negative
		{SizeBytes: 512, LineBytes: -64, Ways: 2},    // negative
		{SizeBytes: 64 * 2, LineBytes: 64, Ways: 64}, // zero sets
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	good := cache.Config{Name: "L1", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.Sets() != 64 {
		t.Errorf("Sets = %d, want 64", good.Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103f) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next-line access hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits %d misses %d", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 2 ways
	// Three lines mapping to set 0: line = addr>>6; set = line & 3.
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200) // lines 0,4,8 -> set 0
	c.Access(a)                                               // miss, [a]
	c.Access(b)                                               // miss, [b,a]
	c.Access(a)                                               // hit,  [a,b]
	c.Access(d)                                               // miss, evicts b -> [d,a]
	if !c.Probe(a) {
		t.Fatal("a should survive (was MRU)")
	}
	if c.Probe(b) {
		t.Fatal("b should have been evicted (was LRU)")
	}
	if !c.Probe(d) {
		t.Fatal("d should be resident")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small()
	c.Access(0x0000)
	hits, misses := c.Hits(), c.Misses()
	c.Probe(0x0000)
	c.Probe(0xffff)
	if c.Hits() != hits || c.Misses() != misses {
		t.Fatal("Probe changed counters")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set equal to the cache size, accessed repeatedly in order,
	// incurs only cold misses.
	c := cache.New(cache.Config{Name: "t", SizeBytes: 4096, LineBytes: 64, Ways: 4})
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr)
		}
	}
	if c.Misses() != 64 {
		t.Fatalf("misses = %d, want 64 cold misses only", c.Misses())
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A sequential working set of 2x capacity accessed cyclically thrashes
	// LRU: every access misses after warmup.
	c := cache.New(cache.Config{Name: "t", SizeBytes: 4096, LineBytes: 64, Ways: 4})
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 8192; addr += 64 {
			c.Access(addr)
		}
	}
	if c.Hits() != 0 {
		t.Fatalf("cyclic over-capacity sweep should never hit LRU, got %d hits", c.Hits())
	}
}

func TestConflictMissesDependOnAlignment(t *testing.T) {
	// Two arrays that map to the same sets conflict in a direct-mapped
	// cache; offsetting one of them removes the conflicts. This is the
	// microarchitectural effect heap randomization elicits (§1.3).
	run := func(offset uint64) uint64 {
		c := cache.New(cache.Config{Name: "dm", SizeBytes: 1024, LineBytes: 64, Ways: 1})
		baseA, baseB := uint64(0), uint64(16384)+offset
		for i := 0; i < 200; i++ {
			for line := uint64(0); line < 8; line++ {
				c.Access(baseA + line*64)
				c.Access(baseB + line*64)
			}
		}
		return c.Misses()
	}
	aligned := run(0)  // same sets: ping-pong conflicts
	offset := run(512) // disjoint halves: no conflicts after warmup
	if aligned <= offset*10 {
		t.Fatalf("aligned misses %d should dwarf offset misses %d", aligned, offset)
	}
}

func TestInclusionProperty(t *testing.T) {
	// LRU stack property: for the same access stream, doubling the ways
	// (same #sets) never increases misses.
	streamFor := func() []uint64 {
		r := xrand.New(99)
		addrs := make([]uint64, 20000)
		for i := range addrs {
			addrs[i] = uint64(r.Intn(1 << 14))
		}
		return addrs
	}
	c2 := cache.New(cache.Config{Name: "2w", SizeBytes: 2048, LineBytes: 64, Ways: 2})
	c4 := cache.New(cache.Config{Name: "4w", SizeBytes: 4096, LineBytes: 64, Ways: 4})
	for _, a := range streamFor() {
		c2.Access(a)
	}
	for _, a := range streamFor() {
		c4.Access(a)
	}
	if c4.Misses() > c2.Misses() {
		t.Fatalf("larger cache missed more: %d > %d", c4.Misses(), c2.Misses())
	}
}

func TestInclusionPropertyQuick(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		small := cache.New(cache.Config{Name: "s", SizeBytes: 1024, LineBytes: 64, Ways: 2})
		big := cache.New(cache.Config{Name: "b", SizeBytes: 2048, LineBytes: 64, Ways: 4})
		for i := 0; i < 5000; i++ {
			a := uint64(r.Intn(1 << 13))
			small.Access(a)
			big.Access(a)
		}
		return big.Misses() <= small.Misses()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	if c.MissRate() != 0 {
		t.Fatal("empty cache MissRate should be 0")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %v, want 0.5", got)
	}
}

func TestResetAndFlush(t *testing.T) {
	c := small()
	c.Access(0)
	c.ResetCounters()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("ResetCounters did not zero counters")
	}
	if !c.Access(0) {
		t.Fatal("ResetCounters should not flush contents")
	}
	c.Flush()
	if c.Access(0) {
		t.Fatal("Flush should invalidate contents")
	}
}

func TestLinesSpanned(t *testing.T) {
	c := small()
	cases := []struct {
		addr, size uint64
		want       int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{64, 64, 1},
		{10, 200, 4},
	}
	for _, tc := range cases {
		if got := c.LinesSpanned(tc.addr, tc.size); got != tc.want {
			t.Errorf("LinesSpanned(%d,%d) = %d, want %d", tc.addr, tc.size, got, tc.want)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config did not panic")
		}
	}()
	cache.New(cache.Config{SizeBytes: 3, LineBytes: 2, Ways: 1})
}

func TestPrefetchInstallsWithoutCounting(t *testing.T) {
	c := small()
	c.Prefetch(0x2000)
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("Prefetch must not touch the counters")
	}
	if !c.Probe(0x2000) {
		t.Fatal("Prefetch did not install the line")
	}
	if !c.Access(0x2000) {
		t.Fatal("prefetched line should hit on demand access")
	}
}
