package svgplot_test

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"interferometry/internal/svgplot"
)

func scatter() svgplot.Scatter {
	return svgplot.Scatter{
		Title:  "CPI vs MPKI",
		XLabel: "MPKI",
		YLabel: "CPI",
		X:      []float64{1, 2, 3, 4, 5},
		Y:      []float64{0.52, 0.55, 0.58, 0.6, 0.66},
		Band: []svgplot.BandPoint{
			{X: 0, Fit: 0.5, CILow: 0.48, CIHigh: 0.52, PILow: 0.46, PIHigh: 0.54},
			{X: 5, Fit: 0.65, CILow: 0.63, CIHigh: 0.67, PILow: 0.61, PIHigh: 0.69},
		},
	}
}

func TestWriteScatterWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := svgplot.WriteScatter(&buf, scatter()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatalf("not an SVG: %.60q", out)
	}
	// The document must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	for _, want := range []string{"CPI vs MPKI", "circle", "polygon", "polyline"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 5 data points -> 5 circles.
	if got := strings.Count(out, "<circle"); got != 5 {
		t.Errorf("%d circles, want 5", got)
	}
}

func TestWriteScatterErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := svgplot.WriteScatter(&buf, svgplot.Scatter{}); err == nil {
		t.Error("empty scatter accepted")
	}
	if err := svgplot.WriteScatter(&buf, svgplot.Scatter{X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestWriteScatterEscapesText(t *testing.T) {
	s := scatter()
	s.Title = `a<b & "c"`
	var buf bytes.Buffer
	if err := svgplot.WriteScatter(&buf, s); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "a<b") {
		t.Error("title not escaped")
	}
	if !strings.Contains(buf.String(), "a&lt;b &amp;") {
		t.Error("escaped title missing")
	}
}

func TestWriteViolins(t *testing.T) {
	v := svgplot.Violins{
		Title:  "Figure 1",
		YLabel: "% CPI deviation",
		Cols: []svgplot.ViolinColumn{
			{Label: "bench.a", Profile: [][2]float64{{-1, 0.1}, {0, 1.0}, {1, 0.1}}},
			{Label: "bench.b", Profile: [][2]float64{{-2, 0.3}, {0, 0.6}, {2, 0.3}}},
		},
	}
	var buf bytes.Buffer
	if err := svgplot.WriteViolins(&buf, v); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	if strings.Count(out, "<polygon") != 2 {
		t.Errorf("want one polygon per violin")
	}
	for _, want := range []string{"bench.a", "bench.b", "% CPI deviation"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestWriteViolinsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := svgplot.WriteViolins(&buf, svgplot.Violins{}); err == nil {
		t.Error("empty violins accepted")
	}
	empty := svgplot.Violins{Cols: []svgplot.ViolinColumn{{Label: "x"}}}
	if err := svgplot.WriteViolins(&buf, empty); err == nil {
		t.Error("empty profiles accepted")
	}
}
