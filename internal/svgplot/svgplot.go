// Package svgplot renders the paper's figure types — violin plots and
// scatter plots with regression lines and interval bands — as
// self-contained SVG documents, using nothing but the standard library.
// Command report uses it to write figs/*.svg so the reproduction's plots
// can be compared with the paper's side by side.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Size and style constants shared by the renderers.
const (
	plotWidth    = 840
	plotHeight   = 480
	marginLeft   = 70
	marginRight  = 24
	marginTop    = 36
	marginBottom = 56
)

const (
	colAxis   = "#444444"
	colGrid   = "#dddddd"
	colPoint  = "#1f77b4"
	colFit    = "#d62728"
	colCI     = "#ff9896"
	colPI     = "#fdd0ce"
	colViolin = "#7db8da"
)

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

type canvas struct {
	b strings.Builder
}

func newCanvas(w, h int) *canvas {
	c := &canvas{}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *canvas) line(x1, y1, x2, y2 float64, color string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

func (c *canvas) circle(x, y, r float64, color string) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.75"/>`+"\n", x, y, r, color)
}

func (c *canvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" fill="%s" text-anchor="%s">%s</text>`+"\n",
		x, y, size, colAxis, anchor, esc(s))
}

func (c *canvas) polygon(pts [][2]float64, fill string) {
	var sb strings.Builder
	for i, p := range pts {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", p[0], p[1])
	}
	fmt.Fprintf(&c.b, `<polygon points="%s" fill="%s" fill-opacity="0.55" stroke="none"/>`+"\n", sb.String(), fill)
}

func (c *canvas) polyline(pts [][2]float64, color string, width float64) {
	var sb strings.Builder
	for i, p := range pts {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", p[0], p[1])
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n", sb.String(), color, width)
}

func (c *canvas) close() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

// axes maps data space to pixel space.
type axes struct {
	xmin, xmax, ymin, ymax float64
}

func (a axes) x(v float64) float64 {
	if a.xmax == a.xmin {
		return marginLeft
	}
	return marginLeft + (v-a.xmin)/(a.xmax-a.xmin)*float64(plotWidth-marginLeft-marginRight)
}

func (a axes) y(v float64) float64 {
	if a.ymax == a.ymin {
		return plotHeight - marginBottom
	}
	return float64(plotHeight-marginBottom) - (v-a.ymin)/(a.ymax-a.ymin)*float64(plotHeight-marginTop-marginBottom)
}

// niceTicks returns ~n rounded tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo, hi}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func drawFrame(c *canvas, a axes, title, xlabel, ylabel string) {
	x0, y0 := float64(marginLeft), float64(plotHeight-marginBottom)
	x1, y1 := float64(plotWidth-marginRight), float64(marginTop)
	for _, tv := range niceTicks(a.xmin, a.xmax, 8) {
		px := a.x(tv)
		c.line(px, y0, px, y1, colGrid, 0.7)
		c.text(px, y0+18, 11, "middle", trimFloat(tv))
	}
	for _, tv := range niceTicks(a.ymin, a.ymax, 7) {
		py := a.y(tv)
		c.line(x0, py, x1, py, colGrid, 0.7)
		c.text(x0-6, py+4, 11, "end", trimFloat(tv))
	}
	c.line(x0, y0, x1, y0, colAxis, 1.2)
	c.line(x0, y0, x0, y1, colAxis, 1.2)
	c.text(float64(plotWidth)/2, 20, 14, "middle", title)
	c.text(float64(plotWidth)/2, float64(plotHeight)-12, 12, "middle", xlabel)
	fmt.Fprintf(&c.b, `<text x="16" y="%d" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		plotHeight/2, colAxis, plotHeight/2, esc(ylabel))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// BandPoint is one sampled interval position along the fitted line.
type BandPoint struct {
	X             float64
	Fit           float64
	CILow, CIHigh float64
	PILow, PIHigh float64
}

// Scatter describes a scatter-with-regression figure (the paper's
// Figures 2 and 3 panels).
type Scatter struct {
	Title          string
	XLabel, YLabel string
	X, Y           []float64
	Band           []BandPoint // sorted by X; optional
}

// WriteScatter renders the figure as SVG.
func WriteScatter(w io.Writer, s Scatter) error {
	if len(s.X) != len(s.Y) || len(s.X) == 0 {
		return fmt.Errorf("svgplot: scatter needs matching non-empty X/Y")
	}
	a := axes{xmin: math.Inf(1), xmax: math.Inf(-1), ymin: math.Inf(1), ymax: math.Inf(-1)}
	grow := func(x, y float64) {
		a.xmin = math.Min(a.xmin, x)
		a.xmax = math.Max(a.xmax, x)
		a.ymin = math.Min(a.ymin, y)
		a.ymax = math.Max(a.ymax, y)
	}
	for i := range s.X {
		grow(s.X[i], s.Y[i])
	}
	for _, p := range s.Band {
		grow(p.X, p.PILow)
		grow(p.X, p.PIHigh)
	}
	// Pad the ranges slightly.
	padX := (a.xmax - a.xmin) * 0.05
	padY := (a.ymax - a.ymin) * 0.08
	if padX == 0 {
		padX = 1
	}
	if padY == 0 {
		padY = 1
	}
	a.xmin -= padX
	a.xmax += padX
	a.ymin -= padY
	a.ymax += padY

	c := newCanvas(plotWidth, plotHeight)
	drawFrame(c, a, s.Title, s.XLabel, s.YLabel)

	// Bands first (PI behind CI), then fit line, then points.
	if len(s.Band) > 1 {
		var pi, ci [][2]float64
		for _, p := range s.Band {
			pi = append(pi, [2]float64{a.x(p.X), a.y(p.PIHigh)})
			ci = append(ci, [2]float64{a.x(p.X), a.y(p.CIHigh)})
		}
		for i := len(s.Band) - 1; i >= 0; i-- {
			p := s.Band[i]
			pi = append(pi, [2]float64{a.x(p.X), a.y(p.PILow)})
			ci = append(ci, [2]float64{a.x(p.X), a.y(p.CILow)})
		}
		c.polygon(pi, colPI)
		c.polygon(ci, colCI)
		var fit [][2]float64
		for _, p := range s.Band {
			fit = append(fit, [2]float64{a.x(p.X), a.y(p.Fit)})
		}
		c.polyline(fit, colFit, 2)
	}
	for i := range s.X {
		c.circle(a.x(s.X[i]), a.y(s.Y[i]), 3, colPoint)
	}
	_, err := io.WriteString(w, c.close())
	return err
}

// ViolinColumn is one violin: a label and its density outline.
type ViolinColumn struct {
	Label string
	// Profile is the (value, density) outline; density is normalized per
	// violin by the renderer.
	Profile [][2]float64
}

// Violins describes a multi-column violin figure (the paper's Figure 1).
type Violins struct {
	Title  string
	YLabel string
	Cols   []ViolinColumn
}

// WriteViolins renders the figure as SVG.
func WriteViolins(w io.Writer, v Violins) error {
	if len(v.Cols) == 0 {
		return fmt.Errorf("svgplot: no violin columns")
	}
	a := axes{xmin: 0, xmax: float64(len(v.Cols)), ymin: math.Inf(1), ymax: math.Inf(-1)}
	for _, col := range v.Cols {
		for _, p := range col.Profile {
			a.ymin = math.Min(a.ymin, p[0])
			a.ymax = math.Max(a.ymax, p[0])
		}
	}
	if math.IsInf(a.ymin, 1) {
		return fmt.Errorf("svgplot: violins have empty profiles")
	}
	pad := (a.ymax - a.ymin) * 0.06
	a.ymin -= pad
	a.ymax += pad

	c := newCanvas(plotWidth, plotHeight)
	// Frame with only y ticks; x carries the labels.
	x0, y0 := float64(marginLeft), float64(plotHeight-marginBottom)
	x1 := float64(plotWidth - marginRight)
	for _, tv := range niceTicks(a.ymin, a.ymax, 7) {
		py := a.y(tv)
		c.line(x0, py, x1, py, colGrid, 0.7)
		c.text(x0-6, py+4, 11, "end", trimFloat(tv))
	}
	c.line(x0, y0, x1, y0, colAxis, 1.2)
	c.line(x0, y0, x0, float64(marginTop), colAxis, 1.2)
	c.text(float64(plotWidth)/2, 20, 14, "middle", v.Title)
	fmt.Fprintf(&c.b, `<text x="16" y="%d" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		plotHeight/2, colAxis, plotHeight/2, esc(v.YLabel))

	halfWidth := (a.x(1) - a.x(0)) * 0.42
	for i, col := range v.Cols {
		cx := a.x(float64(i) + 0.5)
		maxD := 0.0
		for _, p := range col.Profile {
			maxD = math.Max(maxD, p[1])
		}
		if maxD == 0 {
			maxD = 1
		}
		var left, right [][2]float64
		for _, p := range col.Profile {
			dy := a.y(p[0])
			dx := p[1] / maxD * halfWidth
			right = append(right, [2]float64{cx + dx, dy})
		}
		for j := len(col.Profile) - 1; j >= 0; j-- {
			p := col.Profile[j]
			left = append(left, [2]float64{cx - p[1]/maxD*halfWidth, a.y(p[0])})
		}
		c.polygon(append(right, left...), colViolin)
		// Rotated label under the column.
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			cx, y0+14, colAxis, cx, y0+14, esc(col.Label))
	}
	_, err := io.WriteString(w, c.close())
	return err
}
