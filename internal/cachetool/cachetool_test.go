package cachetool_test

import (
	"reflect"
	"testing"

	"interferometry/internal/cachetool"
	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/cache"
)

func fixtures(t *testing.T) (*interp.Trace, *toolchain.Executable) {
	t.Helper()
	p := testprog.ManyBranches(300, 300)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 120000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 2, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, exe
}

func geoms() []cache.Config {
	return []cache.Config{
		{Name: "4KB", SizeBytes: 4 * 1024, LineBytes: 64, Ways: 4},
		{Name: "16KB", SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8},
		{Name: "64KB", SizeBytes: 64 * 1024, LineBytes: 64, Ways: 8},
	}
}

func TestRunICacheSizesMonotone(t *testing.T) {
	tr, exe := fixtures(t)
	rs, err := cachetool.RunICache(tr, exe, geoms(), cachetool.Config{Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d results", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Misses > rs[i-1].Misses {
			t.Errorf("bigger I-cache %s missed more than %s (%d > %d)",
				rs[i].Name, rs[i-1].Name, rs[i].Misses, rs[i-1].Misses)
		}
	}
	// All candidates see the same access stream.
	if rs[0].Accesses != rs[2].Accesses || rs[0].Accesses == 0 {
		t.Errorf("access counts diverge: %d vs %d", rs[0].Accesses, rs[2].Accesses)
	}
	if rs[0].MPKI() <= 0 || rs[0].MissRate() <= 0 {
		t.Error("small cache should miss")
	}
}

func TestRunICacheDeterministic(t *testing.T) {
	tr, exe := fixtures(t)
	a, err := cachetool.RunICache(tr, exe, geoms(), cachetool.Config{Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cachetool.RunICache(tr, exe, geoms(), cachetool.Config{Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cachetool results vary between identical runs")
	}
}

func TestWarmupReducesMisses(t *testing.T) {
	tr, exe := fixtures(t)
	big := []cache.Config{{Name: "256KB", SizeBytes: 256 * 1024, LineBytes: 64, Ways: 8}}
	warm, err := cachetool.RunICache(tr, exe, big, cachetool.Config{Warmup: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cachetool.RunICache(tr, exe, big, cachetool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if warm[0].Misses >= cold[0].Misses {
		t.Errorf("warmup misses %d should be below cold %d (compulsory removed)",
			warm[0].Misses, cold[0].Misses)
	}
}

func TestRunDCache(t *testing.T) {
	p := testprog.CacheStress(260, 4000)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 100000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cachetool.RunDCache(tr, exe, geoms(), cachetool.Config{
		Warmup: true, HeapMode: heap.ModeRandomized, HeapSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Misses > rs[i-1].Misses {
			t.Errorf("bigger D-cache missed more: %s %d > %s %d",
				rs[i].Name, rs[i].Misses, rs[i-1].Name, rs[i-1].Misses)
		}
	}
	if rs[0].Accesses != uint64(tr.MemAccesses()) {
		t.Errorf("accesses %d, trace has %d", rs[0].Accesses, tr.MemAccesses())
	}
	// Heap seed changes placements and therefore conflict misses in the
	// small candidate.
	rs2, err := cachetool.RunDCache(tr, exe, geoms(), cachetool.Config{
		Warmup: true, HeapMode: heap.ModeRandomized, HeapSeed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs2[0].Misses == rs[0].Misses {
		t.Log("note: identical miss counts across heap seeds (possible but unlikely)")
	}
}

func TestValidation(t *testing.T) {
	tr, exe := fixtures(t)
	if _, err := cachetool.RunICache(nil, exe, geoms(), cachetool.Config{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := cachetool.RunICache(tr, nil, geoms(), cachetool.Config{}); err == nil {
		t.Error("nil exe accepted")
	}
	if _, err := cachetool.RunICache(tr, exe, nil, cachetool.Config{}); err == nil {
		t.Error("no candidates accepted")
	}
	bad := []cache.Config{{Name: "bad", SizeBytes: 3, LineBytes: 2, Ways: 1}}
	if _, err := cachetool.RunICache(tr, exe, bad, cachetool.Config{}); err == nil {
		t.Error("invalid geometry accepted")
	}
	other := testprog.Counting(3)
	otherTr, err := interp.Run(other, 1, interp.StopRule{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cachetool.RunICache(otherTr, exe, geoms(), cachetool.Config{}); err == nil {
		t.Error("cross-program trace accepted")
	}
}
