// Package cachetool is the cache-side analog of internal/pintool and the
// paper's proposed future work (§1.4, §8: "future work will focus on the
// other microarchitectural structures affected by code and data placement
// such as the instruction and data caches"). It replays a trace's
// instruction-fetch stream (and optionally its data stream) against a set
// of candidate cache geometries, producing each candidate's misses per
// kilo-instruction — which an interferometry model then converts into a
// predicted CPI, exactly as §7 does for branch predictors.
package cachetool

import (
	"errors"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/cache"
)

// Result is one candidate cache's miss outcome on one executable.
type Result struct {
	Name         string
	Instructions uint64
	Accesses     uint64
	Misses       uint64
}

// MPKI returns misses per 1000 instructions.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Instructions) * 1000
}

// MissRate returns misses per access.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// Config controls the replay.
type Config struct {
	// FetchBytes is the instruction-fetch granularity (default 16,
	// matching the machine model).
	FetchBytes uint64
	// Warmup replays the stream once before counting, removing cold-start
	// bias for large candidate caches on short traces.
	Warmup bool
	// Data simulates the candidates against the data-access stream
	// instead of the instruction-fetch stream. HeapMode/HeapSeed place
	// heap objects for address resolution.
	Data     bool
	HeapMode heap.Mode
	HeapSeed uint64
}

// RunICache replays the instruction-fetch stream of (trace, exe) against
// each candidate geometry.
func RunICache(tr *interp.Trace, exe *toolchain.Executable, candidates []cache.Config, cfg Config) ([]Result, error) {
	if err := validate(tr, exe, candidates); err != nil {
		return nil, err
	}
	if cfg.FetchBytes == 0 {
		cfg.FetchBytes = 16
	}
	caches := make([]*cache.Cache, len(candidates))
	results := make([]Result, len(candidates))
	for i, cc := range candidates {
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		caches[i] = cache.New(cc)
		results[i] = Result{Name: cc.Name, Instructions: tr.Instrs}
	}

	prog := exe.Program
	passes := 1
	if cfg.Warmup {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		counting := pass == passes-1
		if counting {
			for i := range caches {
				caches[i].ResetCounters()
			}
		}
		cur := tr.NewCursor()
		for {
			bid, ok := cur.NextBlock()
			if !ok {
				break
			}
			addr := exe.BlockAddr[bid]
			end := addr + uint64(prog.Blocks[bid].Bytes)
			fa := addr &^ (cfg.FetchBytes - 1)
			for fa < end {
				for i := range caches {
					caches[i].Access(fa)
				}
				fa += cfg.FetchBytes
			}
		}
	}
	for i := range results {
		results[i].Accesses = caches[i].Accesses()
		results[i].Misses = caches[i].Misses()
	}
	return results, nil
}

// RunDCache replays the data-access stream against each candidate
// geometry, resolving heap objects through the configured allocator.
func RunDCache(tr *interp.Trace, exe *toolchain.Executable, candidates []cache.Config, cfg Config) ([]Result, error) {
	if err := validate(tr, exe, candidates); err != nil {
		return nil, err
	}
	caches := make([]*cache.Cache, len(candidates))
	results := make([]Result, len(candidates))
	for i, cc := range candidates {
		if err := cc.Validate(); err != nil {
			return nil, err
		}
		caches[i] = cache.New(cc)
		results[i] = Result{Name: cc.Name, Instructions: tr.Instrs}
	}

	prog := exe.Program
	passes := 1
	if cfg.Warmup {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		counting := pass == passes-1
		if counting {
			for i := range caches {
				caches[i].ResetCounters()
			}
		}
		// The allocator replays from scratch each pass so placements are
		// identical between warmup and measurement.
		alloc := heap.New(cfg.HeapMode, cfg.HeapSeed, heap.Config{Base: exe.DataLimit + 0x1000000})
		objBase := make([]uint64, len(prog.Objects))
		for i := range prog.Objects {
			if !prog.Objects[i].Heap {
				objBase[i] = exe.GlobalBase[i]
			}
		}
		cur := tr.NewCursor()
		for {
			bid, ok := cur.NextBlock()
			if !ok {
				break
			}
			b := &prog.Blocks[bid]
			for range b.Allocs {
				obj, kind := cur.NextAlloc()
				if kind == isa.AllocNew {
					objBase[obj] = alloc.Alloc(obj, prog.Objects[obj].Size)
				} else {
					alloc.Free(obj)
				}
			}
			for range b.Mems {
				obj, off := cur.NextMem()
				addr := objBase[obj] + uint64(off)
				for i := range caches {
					caches[i].Access(addr)
				}
			}
		}
	}
	for i := range results {
		results[i].Accesses = caches[i].Accesses()
		results[i].Misses = caches[i].Misses()
	}
	return results, nil
}

func validate(tr *interp.Trace, exe *toolchain.Executable, candidates []cache.Config) error {
	if tr == nil || exe == nil {
		return errors.New("cachetool: nil trace or executable")
	}
	if tr.Program != exe.Program {
		return errors.New("cachetool: trace and executable are from different programs")
	}
	if len(candidates) == 0 {
		return errors.New("cachetool: no candidate geometries")
	}
	return nil
}
