// Package heap provides the simulated-heap allocators used to perturb
// data placement. The paper uses "a custom memory allocator based on
// DieHard that essentially assigns random addresses to heap-allocated
// objects to elicit perturbations due to conflict misses in the data
// caches" (§4.4, §1.3). Here the DieHard-style allocator places objects in
// uniformly random free slots of power-of-two size-class regions kept at
// most half full, driven by a seeded PRNG so that a heap seed reproduces a
// placement exactly. A sequential bump allocator provides the
// deterministic, layout-insensitive baseline.
package heap

import (
	"fmt"

	"interferometry/internal/isa"
	"interferometry/internal/xrand"
)

// Allocator places abstract data objects at concrete simulated addresses.
// Implementations must be deterministic functions of their construction
// parameters and the call sequence.
type Allocator interface {
	// Alloc places the object and returns its base address. Allocating a
	// live object is a churn operation: the object is freed and placed
	// anew (possibly elsewhere).
	Alloc(obj isa.ObjectID, size uint64) uint64
	// Free releases the object's storage. Freeing a dead object is a
	// no-op.
	Free(obj isa.ObjectID)
	// Base returns the object's current base address; ok is false if the
	// object has never been allocated. For a freed object, Base keeps
	// returning its last address (a replayed dangling access still needs
	// somewhere to go) with ok true.
	Base(obj isa.ObjectID) (uint64, bool)
	// Live reports whether the object is currently allocated.
	Live(obj isa.ObjectID) bool
}

// PlacementAlign is the alignment every placement from either allocator
// honors under the default MinSlot: Bump aligns each object to 16
// bytes, and Randomized carves power-of-two slots of at least MinSlot
// from slot-aligned regions (large-object page jitter moves bases in
// whole 4096-byte pages). Consumers that derive canonical sub-object
// geometry from placements — the machine's delta-replay recording keys
// its heap units on 16-byte boundaries — rely on this invariant and
// verify it per placement.
const PlacementAlign = 16

// Config sets the simulated address range for a heap.
type Config struct {
	// Base is the first heap address. Zero means 0x20000000, above the
	// linker's default data segment.
	Base uint64
	// MinSlot is the smallest slot size. Zero means 16.
	MinSlot uint64
}

func (c *Config) fillDefaults() {
	if c.Base == 0 {
		c.Base = 0x20000000
	}
	if c.MinSlot == 0 {
		c.MinSlot = 16
	}
}

// Randomized is the DieHard-style allocator.
type Randomized struct {
	cfg     Config
	rng     xrand.Rand
	next    uint64 // bump pointer for carving new class regions
	classes map[uint64]*sizeClass
	objs    []placement
	// pool holds retired regions from before a Reset; grow reuses their
	// backing storage instead of allocating, so a reset allocator reaches
	// steady state without fresh allocations.
	pool []*region
}

// placement is indexed by ObjectID; known distinguishes an object that has
// never been allocated from one placed at address zero.
type placement struct {
	base  uint64
	size  uint64
	class uint64
	known bool
	live  bool
}

// ensurePlacement grows objs to cover obj and returns its slot. Growth
// doubles capacity so repeated runs over the same program allocate only on
// first use.
func ensurePlacement(objs *[]placement, obj isa.ObjectID) *placement {
	if n := int(obj) + 1; n > len(*objs) {
		if n <= cap(*objs) {
			*objs = (*objs)[:n]
		} else {
			grown := make([]placement, n, 2*n)
			copy(grown, *objs)
			*objs = grown
		}
	}
	return &(*objs)[obj]
}

type sizeClass struct {
	slot    uint64
	regions []*region
	free    int // total free slots across regions
	total   int
}

type region struct {
	base  uint64
	slots int
	used  []bool
	free  int
}

// NewRandomized returns a randomizing allocator seeded by seed.
func NewRandomized(seed uint64, cfg Config) *Randomized {
	a := &Randomized{classes: make(map[uint64]*sizeClass)}
	a.Reset(seed, cfg)
	return a
}

// Reset restores the allocator to the state NewRandomized(seed, cfg) would
// produce, reusing the existing storage: the address sequence after a Reset
// is bit-identical to that of a freshly constructed allocator.
func (a *Randomized) Reset(seed uint64, cfg Config) {
	cfg.fillDefaults()
	a.cfg = cfg
	a.rng.Reseed(xrand.Mix(seed, 0x68656170)) // "heap"
	a.next = cfg.Base
	for _, sc := range a.classes {
		a.pool = append(a.pool, sc.regions...)
		sc.regions = sc.regions[:0]
		sc.free, sc.total = 0, 0
	}
	for i := range a.objs {
		a.objs[i] = placement{}
	}
}

// classSlot returns the power-of-two slot size for an allocation.
func (a *Randomized) classSlot(size uint64) uint64 {
	s := a.cfg.MinSlot
	for s < size {
		s <<= 1
	}
	return s
}

// pageBytes is the page granularity of large-object placement. DieHard
// maps large objects at page-aligned addresses, so their cache-set
// alignment varies from placement to placement; without this, a
// power-of-two slot size would pin every large object to the same
// set-index phase and hide exactly the conflict variance heap
// randomization is supposed to elicit.
const pageBytes = 4096

// Alloc implements Allocator.
func (a *Randomized) Alloc(obj isa.ObjectID, size uint64) uint64 {
	p := ensurePlacement(&a.objs, obj)
	if p.known && p.live {
		a.Free(obj)
	}
	slot := a.classSlot(size)
	jitterSlots := uint64(0)
	if slot > pageBytes {
		// Large objects get a double-width slot and land at a random
		// page offset inside it.
		slot *= 2
		jitterSlots = (slot - size) / pageBytes
	}
	sc := a.classes[slot]
	if sc == nil {
		sc = &sizeClass{slot: slot}
		a.classes[slot] = sc
	}
	// DieHard keeps each miniheap at most half full so that random
	// placement has high entropy; grow before that threshold is crossed.
	if sc.free*2 <= sc.total || sc.total == 0 {
		a.grow(sc)
	}
	// Rejection-sample a free slot uniformly over the whole class.
	for {
		idx := a.rng.Intn(sc.total)
		for _, r := range sc.regions {
			if idx < r.slots {
				if !r.used[idx] {
					r.used[idx] = true
					r.free--
					sc.free--
					base := r.base + uint64(idx)*slot
					if jitterSlots > 0 {
						base += a.rng.Uint64n(jitterSlots+1) * pageBytes
					}
					*p = placement{base: base, size: size, class: slot, known: true, live: true}
					return base
				}
				break
			}
			idx -= r.slots
		}
	}
}

// grow adds a region to the class, doubling capacity each time. Retired
// regions from a Reset are reused when large enough.
func (a *Randomized) grow(sc *sizeClass) {
	slots := sc.total
	if slots == 0 {
		slots = 8
	}
	r := a.newRegion(slots)
	r.base = align(a.next, sc.slot)
	a.next = r.base + uint64(slots)*sc.slot
	sc.regions = append(sc.regions, r)
	sc.free += slots
	sc.total += slots
}

// newRegion returns a cleared region with the given slot count, reusing
// pooled storage when possible.
func (a *Randomized) newRegion(slots int) *region {
	for i, r := range a.pool {
		if cap(r.used) >= slots {
			a.pool[i] = a.pool[len(a.pool)-1]
			a.pool = a.pool[:len(a.pool)-1]
			r.used = r.used[:slots]
			for j := range r.used {
				r.used[j] = false
			}
			r.slots = slots
			r.free = slots
			return r
		}
	}
	return &region{slots: slots, used: make([]bool, slots), free: slots}
}

// Free implements Allocator.
func (a *Randomized) Free(obj isa.ObjectID) {
	if int(obj) >= len(a.objs) {
		return
	}
	p := &a.objs[obj]
	if !p.known || !p.live {
		return
	}
	sc := a.classes[p.class]
	for _, r := range sc.regions {
		if p.base >= r.base && p.base < r.base+uint64(r.slots)*sc.slot {
			idx := int((p.base - r.base) / sc.slot)
			if r.used[idx] {
				r.used[idx] = false
				r.free++
				sc.free++
			}
			break
		}
	}
	p.live = false
}

// Base implements Allocator.
func (a *Randomized) Base(obj isa.ObjectID) (uint64, bool) {
	if int(obj) >= len(a.objs) || !a.objs[obj].known {
		return 0, false
	}
	return a.objs[obj].base, true
}

// Live implements Allocator.
func (a *Randomized) Live(obj isa.ObjectID) bool {
	return int(obj) < len(a.objs) && a.objs[obj].live
}

// Bump is the sequential baseline allocator: objects are placed one after
// another with 16-byte alignment and storage is never reused, so the
// placement is identical for every seed — the "allocator noise off"
// configuration of an experiment.
type Bump struct {
	cfg  Config
	next uint64
	objs []placement
}

// NewBump returns a bump allocator.
func NewBump(cfg Config) *Bump {
	b := &Bump{}
	b.Reset(cfg)
	return b
}

// Reset restores the allocator to the state NewBump(cfg) would produce,
// reusing the existing placement storage.
func (b *Bump) Reset(cfg Config) {
	cfg.fillDefaults()
	b.cfg = cfg
	b.next = cfg.Base
	for i := range b.objs {
		b.objs[i] = placement{}
	}
}

// Alloc implements Allocator.
func (b *Bump) Alloc(obj isa.ObjectID, size uint64) uint64 {
	p := ensurePlacement(&b.objs, obj)
	base := align(b.next, 16)
	b.next = base + size
	// Churn on a bump allocator re-places at a fresh address too; the
	// address stream stays deterministic.
	*p = placement{base: base, size: size, known: true, live: true}
	return base
}

// Free implements Allocator.
func (b *Bump) Free(obj isa.ObjectID) {
	if int(obj) < len(b.objs) {
		b.objs[obj].live = false
	}
}

// Base implements Allocator.
func (b *Bump) Base(obj isa.ObjectID) (uint64, bool) {
	if int(obj) >= len(b.objs) || !b.objs[obj].known {
		return 0, false
	}
	return b.objs[obj].base, true
}

// Live implements Allocator.
func (b *Bump) Live(obj isa.ObjectID) bool {
	return int(obj) < len(b.objs) && b.objs[obj].live
}

// Mode selects the allocator used by a campaign.
type Mode uint8

// Allocator modes.
const (
	// ModeBump uses the sequential allocator: data layout is identical
	// across heap seeds (code reordering only, the paper's default).
	ModeBump Mode = iota
	// ModeRandomized uses the DieHard-style allocator (§1.3 experiments).
	ModeRandomized
)

func (m Mode) String() string {
	switch m {
	case ModeBump:
		return "bump"
	case ModeRandomized:
		return "randomized"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// New constructs the allocator for a mode.
func New(m Mode, seed uint64, cfg Config) Allocator {
	if m == ModeRandomized {
		return NewRandomized(seed, cfg)
	}
	return NewBump(cfg)
}

func align(addr, a uint64) uint64 {
	if a <= 1 {
		return addr
	}
	return (addr + a - 1) &^ (a - 1)
}

// Compile-time interface checks.
var (
	_ Allocator = (*Randomized)(nil)
	_ Allocator = (*Bump)(nil)
)
