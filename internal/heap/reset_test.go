package heap_test

import (
	"testing"

	"interferometry/internal/heap"
	"interferometry/internal/isa"
	"interferometry/internal/xrand"
)

// driveAllocator runs a deterministic churn workload and returns the
// address of every allocation.
func driveAllocator(a heap.Allocator, seed uint64) []uint64 {
	rng := xrand.New(xrand.Mix(seed, 0x7265736574))
	var addrs []uint64
	for i := 0; i < 400; i++ {
		obj := isa.ObjectID(rng.Intn(40))
		switch rng.Intn(3) {
		case 0, 1:
			size := uint64(8 << rng.Intn(10)) // 8B..4KB, plus page-jitter sizes
			if rng.Bool(0.1) {
				size = 5000 + rng.Uint64n(20000)
			}
			addrs = append(addrs, a.Alloc(obj, size))
		case 2:
			a.Free(obj)
		}
	}
	return addrs
}

// TestRandomizedResetMatchesFresh checks that Reset restores a Randomized
// allocator to its freshly-constructed state: the full address sequence of
// a workload must be bit-identical, including when the reset changes seed
// and base address. Machine reuse across campaign runs depends on this.
func TestRandomizedResetMatchesFresh(t *testing.T) {
	cfgA := heap.Config{Base: 0x20000000}
	cfgB := heap.Config{Base: 0x30000000, MinSlot: 32}
	reused := heap.NewRandomized(1, cfgA)
	driveAllocator(reused, 99) // dirty it

	for i, tc := range []struct {
		seed uint64
		cfg  heap.Config
	}{{1, cfgA}, {2, cfgA}, {3, cfgB}, {1, cfgA}} {
		reused.Reset(tc.seed, tc.cfg)
		got := driveAllocator(reused, 7)
		want := driveAllocator(heap.NewRandomized(tc.seed, tc.cfg), 7)
		if len(got) != len(want) {
			t.Fatalf("case %d: %d addrs vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("case %d: alloc %d placed at %#x after reset, %#x fresh", i, j, got[j], want[j])
			}
		}
	}
}

// TestBumpResetMatchesFresh is the bump-allocator analog.
func TestBumpResetMatchesFresh(t *testing.T) {
	reused := heap.NewBump(heap.Config{})
	driveAllocator(reused, 5)
	cfg := heap.Config{Base: 0x40000000}
	reused.Reset(cfg)
	got := driveAllocator(reused, 11)
	want := driveAllocator(heap.NewBump(cfg), 11)
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("alloc %d placed at %#x after reset, %#x fresh", j, got[j], want[j])
		}
	}
	if base, ok := reused.Base(isa.ObjectID(1000)); ok || base != 0 {
		t.Error("never-allocated object reported a base")
	}
}
