package heap_test

import (
	"testing"
	"testing/quick"

	"interferometry/internal/heap"
	"interferometry/internal/isa"
	"interferometry/internal/xrand"
)

func TestRandomizedDeterministic(t *testing.T) {
	a := heap.NewRandomized(7, heap.Config{})
	b := heap.NewRandomized(7, heap.Config{})
	for i := 0; i < 200; i++ {
		obj := isa.ObjectID(i)
		if a.Alloc(obj, 64) != b.Alloc(obj, 64) {
			t.Fatalf("same seed diverged at allocation %d", i)
		}
	}
}

func TestRandomizedSeedsDiffer(t *testing.T) {
	a := heap.NewRandomized(1, heap.Config{})
	b := heap.NewRandomized(2, heap.Config{})
	same := 0
	const n = 100
	for i := 0; i < n; i++ {
		obj := isa.ObjectID(i)
		if a.Alloc(obj, 64) == b.Alloc(obj, 64) {
			same++
		}
	}
	if same > n/2 {
		t.Fatalf("different seeds matched on %d/%d placements", same, n)
	}
}

func TestRandomizedNoOverlapProperty(t *testing.T) {
	// Live allocations must never overlap, across arbitrary interleavings
	// of alloc/free/churn driven by quick.
	check := func(seed uint64, script []byte) bool {
		a := heap.NewRandomized(seed, heap.Config{})
		rng := xrand.New(seed)
		type span struct{ lo, hi uint64 }
		live := map[isa.ObjectID]span{}
		for _, cmd := range script {
			obj := isa.ObjectID(cmd % 16)
			switch {
			case cmd%3 != 0: // alloc or churn
				size := uint64(8 + rng.Intn(5000))
				base := a.Alloc(obj, size)
				live[obj] = span{base, base + size}
			default:
				a.Free(obj)
				delete(live, obj)
			}
			for o1, s1 := range live {
				for o2, s2 := range live {
					if o1 != o2 && s1.lo < s2.hi && s2.lo < s1.hi {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedChurnMovesObjects(t *testing.T) {
	a := heap.NewRandomized(3, heap.Config{})
	first := a.Alloc(1, 128)
	moved := false
	for i := 0; i < 20; i++ {
		if a.Alloc(1, 128) != first {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("randomized churn never moved the object")
	}
}

func TestRandomizedReuse(t *testing.T) {
	// After freeing, addresses must be reusable: alloc/free churn of a
	// single object must not consume unbounded address space.
	a := heap.NewRandomized(4, heap.Config{})
	var maxAddr uint64
	for i := 0; i < 10000; i++ {
		base := a.Alloc(1, 64)
		if base > maxAddr {
			maxAddr = base
		}
		a.Free(1)
	}
	// One live 64B object needs a handful of slots; with reuse the
	// high-water mark stays tiny relative to 10000 * 64.
	if spread := maxAddr - 0x20000000; spread > 1<<20 {
		t.Fatalf("address space grew to %d bytes for one live object", spread)
	}
}

func TestRandomizedBaseAndLive(t *testing.T) {
	a := heap.NewRandomized(5, heap.Config{})
	if _, ok := a.Base(9); ok {
		t.Fatal("Base of never-allocated object should be not-ok")
	}
	if a.Live(9) {
		t.Fatal("never-allocated object reported live")
	}
	base := a.Alloc(9, 32)
	if got, ok := a.Base(9); !ok || got != base {
		t.Fatalf("Base = %v,%v", got, ok)
	}
	if !a.Live(9) {
		t.Fatal("allocated object not live")
	}
	a.Free(9)
	if a.Live(9) {
		t.Fatal("freed object still live")
	}
	if got, ok := a.Base(9); !ok || got != base {
		t.Fatal("freed object should keep reporting its last base")
	}
	a.Free(9) // double free is a no-op
}

func TestRandomizedAlignment(t *testing.T) {
	a := heap.NewRandomized(6, heap.Config{})
	for i, size := range []uint64{1, 16, 17, 100, 4096} {
		base := a.Alloc(isa.ObjectID(i), size)
		slot := uint64(16)
		for slot < size {
			slot <<= 1
		}
		if base%slot != 0 {
			t.Errorf("size %d placed at %#x, not %d-aligned", size, base, slot)
		}
	}
	// Objects above a page get page alignment with a randomized page
	// phase, like DieHard's mmap'd large objects.
	if base := a.Alloc(99, 5000); base%4096 != 0 {
		t.Errorf("large object placed at %#x, not page-aligned", base)
	}
}

func TestRandomizedLargeObjectPhaseVaries(t *testing.T) {
	// The page phase of large objects (their address modulo a 64KB cache
	// period) must differ across seeds — this is what lets heap
	// randomization perturb L2 conflict misses.
	const size = 192 * 1024
	phases := map[uint64]bool{}
	for seed := uint64(1); seed <= 24; seed++ {
		a := heap.NewRandomized(seed, heap.Config{})
		phases[a.Alloc(1, size)%(64*1024)] = true
	}
	if len(phases) < 4 {
		t.Fatalf("only %d distinct cache phases across 24 seeds", len(phases))
	}
}

func TestRandomizedPlacementIsSpreadOut(t *testing.T) {
	// With many same-class allocations, placements should not be
	// sequential: successive addresses should jump around.
	a := heap.NewRandomized(8, heap.Config{})
	var prev uint64
	monotone := 0
	const n = 100
	for i := 0; i < n; i++ {
		base := a.Alloc(isa.ObjectID(i), 64)
		if i > 0 && base > prev {
			monotone++
		}
		prev = base
	}
	if monotone > n*3/4 {
		t.Fatalf("placements look sequential (%d/%d increasing)", monotone, n)
	}
}

func TestBumpSequential(t *testing.T) {
	b := heap.NewBump(heap.Config{})
	a1 := b.Alloc(1, 100)
	a2 := b.Alloc(2, 100)
	if a2 <= a1 {
		t.Fatal("bump allocator not monotone")
	}
	if a1%16 != 0 || a2%16 != 0 {
		t.Fatal("bump allocations not 16-aligned")
	}
	if a2-a1 < 100 {
		t.Fatal("bump allocations overlap")
	}
}

func TestBumpIgnoresSeedEquivalent(t *testing.T) {
	// Two bump allocators give identical placements regardless of any
	// notion of seed — the layout-insensitive baseline.
	b1 := heap.NewBump(heap.Config{})
	b2 := heap.NewBump(heap.Config{})
	for i := 0; i < 50; i++ {
		if b1.Alloc(isa.ObjectID(i), uint64(24+i)) != b2.Alloc(isa.ObjectID(i), uint64(24+i)) {
			t.Fatal("bump allocators disagree")
		}
	}
}

func TestBumpBaseLiveFree(t *testing.T) {
	b := heap.NewBump(heap.Config{})
	if _, ok := b.Base(1); ok {
		t.Fatal("unallocated Base should be not-ok")
	}
	base := b.Alloc(1, 64)
	if got, _ := b.Base(1); got != base {
		t.Fatal("Base mismatch")
	}
	if !b.Live(1) {
		t.Fatal("not live after alloc")
	}
	b.Free(1)
	if b.Live(1) {
		t.Fatal("live after free")
	}
}

func TestNewByMode(t *testing.T) {
	if _, ok := heap.New(heap.ModeRandomized, 1, heap.Config{}).(*heap.Randomized); !ok {
		t.Fatal("ModeRandomized should build a Randomized allocator")
	}
	if _, ok := heap.New(heap.ModeBump, 1, heap.Config{}).(*heap.Bump); !ok {
		t.Fatal("ModeBump should build a Bump allocator")
	}
}

func TestModeString(t *testing.T) {
	if heap.ModeBump.String() != "bump" || heap.ModeRandomized.String() != "randomized" {
		t.Fatal("mode strings wrong")
	}
	if heap.Mode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestConfigBaseRespected(t *testing.T) {
	const base = 0x5000000
	a := heap.NewRandomized(1, heap.Config{Base: base})
	if got := a.Alloc(1, 64); got < base {
		t.Fatalf("allocation %#x below configured base %#x", got, base)
	}
	b := heap.NewBump(heap.Config{Base: base})
	if got := b.Alloc(1, 64); got < base {
		t.Fatalf("bump allocation %#x below configured base %#x", got, base)
	}
}
