package heap

import "interferometry/internal/isa"

// PlacementTable is the K-lane object placement state of a batched
// replay: one allocator and one object-base column per lane (layout),
// with the placed/unplaced flags shared across lanes — whether an object
// has been placed depends only on the trace's allocation events, which
// every lane replays identically; only the addresses differ.
//
// Base addresses are stored object-major (Row(obj) is the K bases of one
// object, contiguous), matching the batch walk's inner loop over lanes.
// Allocators are reused across Reset like machine.Machine reuses its
// per-mode allocators, so a steady-state batch run allocates nothing
// here.
type PlacementTable struct {
	lanes int
	mode  Mode
	bumps []*Bump
	rands []*Randomized
	// base[obj*lanes + k] is object obj's base address in lane k; placed
	// is indexed by object and shared across lanes.
	base   []uint64
	placed []bool
}

// NewPlacementTable builds a table with capacity for maxLanes lanes.
func NewPlacementTable(maxLanes int) *PlacementTable {
	if maxLanes <= 0 {
		panic("heap: placement table needs at least one lane")
	}
	return &PlacementTable{
		bumps: make([]*Bump, maxLanes),
		rands: make([]*Randomized, maxLanes),
	}
}

// MaxLanes returns the table's lane capacity.
func (t *PlacementTable) MaxLanes() int { return len(t.bumps) }

// Lanes returns the active lane count of the current Reset.
func (t *PlacementTable) Lanes() int { return t.lanes }

// Reset prepares the table for one batched run over len(cfgs) lanes (at
// most MaxLanes) and nObjs objects: every lane's allocator is restored
// to the state a fresh construction with (mode, seeds[k], cfgs[k]) would
// produce, and every object is unplaced. seeds is ignored for ModeBump.
func (t *PlacementTable) Reset(nObjs int, mode Mode, seeds []uint64, cfgs []Config) {
	k := len(cfgs)
	if k == 0 || k > len(t.bumps) {
		panic("heap: placement table lane count out of range")
	}
	if mode == ModeRandomized && len(seeds) != k {
		panic("heap: placement table needs one seed per randomized lane")
	}
	t.lanes = k
	t.mode = mode
	for i := 0; i < k; i++ {
		if mode == ModeRandomized {
			if t.rands[i] == nil {
				t.rands[i] = NewRandomized(seeds[i], cfgs[i])
			} else {
				t.rands[i].Reset(seeds[i], cfgs[i])
			}
		} else {
			if t.bumps[i] == nil {
				t.bumps[i] = NewBump(cfgs[i])
			} else {
				t.bumps[i].Reset(cfgs[i])
			}
		}
	}
	if need := nObjs * k; cap(t.base) < need {
		t.base = make([]uint64, need)
	} else {
		t.base = t.base[:need]
	}
	if cap(t.placed) < nObjs {
		t.placed = make([]bool, nObjs)
	} else {
		t.placed = t.placed[:nObjs]
		for i := range t.placed {
			t.placed[i] = false
		}
	}
}

// Row returns the mutable K-lane base-address row of obj. Callers place
// layout-dependent globals by writing the row directly and marking it
// placed.
func (t *PlacementTable) Row(obj isa.ObjectID) []uint64 {
	i := int(obj) * t.lanes
	return t.base[i : i+t.lanes : i+t.lanes]
}

// Placed reports whether obj currently has a base address (shared across
// lanes).
func (t *PlacementTable) Placed(obj isa.ObjectID) bool { return t.placed[obj] }

// MarkPlaced marks obj placed.
func (t *PlacementTable) MarkPlaced(obj isa.ObjectID) { t.placed[obj] = true }

// Alloc replays one AllocNew event into every lane: each lane's
// allocator places the object exactly as a scalar replay of that lane
// would, and the row is updated with the per-lane bases.
func (t *PlacementTable) Alloc(obj isa.ObjectID, size uint64) {
	row := t.Row(obj)
	if t.mode == ModeRandomized {
		for k := 0; k < t.lanes; k++ {
			row[k] = t.rands[k].Alloc(obj, size)
		}
	} else {
		for k := 0; k < t.lanes; k++ {
			row[k] = t.bumps[k].Alloc(obj, size)
		}
	}
	t.placed[obj] = true
}

// Free replays one AllocFree event into every lane. Like the scalar
// replay, the object stays placed: its row keeps the last address so a
// replayed dangling access still has somewhere to go.
func (t *PlacementTable) Free(obj isa.ObjectID) {
	if t.mode == ModeRandomized {
		for k := 0; k < t.lanes; k++ {
			t.rands[k].Free(obj)
		}
	} else {
		for k := 0; k < t.lanes; k++ {
			t.bumps[k].Free(obj)
		}
	}
}
