package heap

import (
	"math/rand"
	"testing"

	"interferometry/internal/isa"
)

// TestPlacementTableMatchesScalarAllocators pins every PlacementTable
// lane bit-identical to a private scalar allocator replaying the same
// allocation-event sequence, in both modes, including Reset reuse.
func TestPlacementTableMatchesScalarAllocators(t *testing.T) {
	const lanes, nObjs = 4, 32
	table := NewPlacementTable(lanes)
	for _, mode := range []Mode{ModeBump, ModeRandomized} {
		t.Run(mode.String(), func(t *testing.T) {
			for round := 0; round < 3; round++ { // round > 0 exercises Reset reuse
				seeds := make([]uint64, lanes)
				cfgs := make([]Config, lanes)
				refs := make([]Allocator, lanes)
				for k := 0; k < lanes; k++ {
					seeds[k] = uint64(1000*round + 17*k + 1)
					cfgs[k] = Config{Base: uint64(0x10000000 + k*0x1000000 + round*0x100)}
					refs[k] = New(mode, seeds[k], cfgs[k])
				}
				table.Reset(nObjs, mode, seeds, cfgs)
				rng := rand.New(rand.NewSource(int64(round)))
				live := make([]bool, nObjs)
				for op := 0; op < 2000; op++ {
					obj := isa.ObjectID(rng.Intn(nObjs))
					if rng.Intn(3) == 0 && live[obj] {
						table.Free(obj)
						for k := 0; k < lanes; k++ {
							refs[k].Free(obj)
						}
						live[obj] = false
						continue
					}
					size := uint64(rng.Intn(9000) + 1)
					table.Alloc(obj, size)
					row := table.Row(obj)
					for k := 0; k < lanes; k++ {
						want := refs[k].Alloc(obj, size)
						if row[k] != want {
							t.Fatalf("round %d op %d obj %d lane %d: table base %#x, scalar %#x",
								round, op, obj, k, row[k], want)
						}
					}
					if !table.Placed(obj) {
						t.Fatalf("obj %d not marked placed after Alloc", obj)
					}
					live[obj] = true
				}
			}
		})
	}
}

// TestPlacementTableGlobalRows checks the direct-row placement path used
// for layout-dependent globals.
func TestPlacementTableGlobalRows(t *testing.T) {
	table := NewPlacementTable(3)
	table.Reset(4, ModeBump, nil, []Config{{}, {}, {}})
	if table.Placed(2) {
		t.Fatal("fresh table has object 2 placed")
	}
	row := table.Row(2)
	row[0], row[1], row[2] = 0x100, 0x200, 0x300
	table.MarkPlaced(2)
	if !table.Placed(2) {
		t.Fatal("MarkPlaced did not take")
	}
	got := table.Row(2)
	if got[0] != 0x100 || got[1] != 0x200 || got[2] != 0x300 {
		t.Fatalf("row round-trip lost bases: %#x", got)
	}
}
