package pmc_test

import (
	"strings"
	"testing"

	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
)

func spec(t *testing.T) machine.RunSpec {
	t.Helper()
	p := testprog.ManyBranches(100, 200)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 80000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 2, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return machine.RunSpec{Exe: exe, Trace: tr, NoiseSeed: 7}
}

func TestEventString(t *testing.T) {
	names := map[pmc.Event]string{
		pmc.EvInstructions:      "INST_RETIRED",
		pmc.EvBranchMispredicts: "BR_MISP_RETIRED",
		pmc.EvL1IMisses:         "L1I_MISSES",
		pmc.EvL2Misses:          "L2_MISSES",
		pmc.EvL1DMisses:         "L1D_MISSES",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
	if pmc.Event(99).String() == "" {
		t.Error("unknown event should render")
	}
}

func TestStandardGroupsCoverAllEvents(t *testing.T) {
	seen := map[pmc.Event]bool{}
	for _, g := range pmc.StandardGroups {
		for _, e := range g {
			seen[e] = true
		}
	}
	for e := pmc.Event(0); e < pmc.NumEvents; e++ {
		if !seen[e] {
			t.Errorf("event %s not covered by any group", e)
		}
	}
	if len(pmc.StandardGroups) != 3 {
		t.Errorf("paper uses three groups of two, got %d", len(pmc.StandardGroups))
	}
}

func TestMeasureFast(t *testing.T) {
	h := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityFast}
	m, err := h.Measure(spec(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 1 {
		t.Errorf("fast fidelity used %d runs", m.Runs)
	}
	if m.Cycles == 0 || m.Instructions == 0 {
		t.Error("empty measurement")
	}
	if m.CPI() <= 0 {
		t.Error("CPI not positive")
	}
	if m.Events[pmc.EvInstructions] != m.Instructions {
		t.Error("instruction event inconsistent")
	}
}

func TestMeasurePaperProtocol(t *testing.T) {
	h := &pmc.Harness{
		Machine:      machine.New(machine.XeonE5440()),
		Fidelity:     pmc.FidelityPaper,
		RunsPerGroup: 5,
	}
	m, err := h.Measure(spec(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 15 {
		t.Errorf("paper protocol should use 3 groups x 5 runs = 15, got %d", m.Runs)
	}
	if m.Cycles == 0 {
		t.Error("no cycles recorded")
	}
}

func TestMedianReducesCPISpread(t *testing.T) {
	// The median-of-five CPI across sessions should be no more spread out
	// than single-run CPIs — the reason the paper does it (§5.5).
	mach := machine.New(machine.XeonE5440())
	fast := &pmc.Harness{Machine: mach, Fidelity: pmc.FidelityFast}
	paper := &pmc.Harness{Machine: mach, Fidelity: pmc.FidelityPaper}
	base := spec(t)

	spreadOf := func(h *pmc.Harness) float64 {
		lo, hi := 1e18, 0.0
		for s := uint64(0); s < 12; s++ {
			sp := base
			sp.NoiseSeed = 1000 + s
			m, err := h.Measure(sp)
			if err != nil {
				t.Fatal(err)
			}
			cpi := m.CPI()
			if cpi < lo {
				lo = cpi
			}
			if cpi > hi {
				hi = cpi
			}
		}
		return hi - lo
	}
	if sp, sf := spreadOf(paper), spreadOf(fast); sp > sf*1.5 {
		t.Errorf("median-of-5 CPI spread %v should not exceed single-run spread %v by much", sp, sf)
	}
}

func TestMeasurementDerived(t *testing.T) {
	var m pmc.Measurement
	m.Cycles = 2000
	m.Instructions = 1000
	m.Events[pmc.EvBranchMispredicts] = 4
	m.Events[pmc.EvL2Misses] = 8
	if m.CPI() != 2.0 {
		t.Errorf("CPI = %v", m.CPI())
	}
	if m.MPKI() != 4 {
		t.Errorf("MPKI = %v", m.MPKI())
	}
	if m.PKI(pmc.EvL2Misses) != 8 {
		t.Errorf("L2 PKI = %v", m.PKI(pmc.EvL2Misses))
	}
	var zero pmc.Measurement
	if zero.CPI() != 0 || zero.MPKI() != 0 {
		t.Error("zero measurement metrics should be zero")
	}
}

func TestMeasureNeedsMachine(t *testing.T) {
	h := &pmc.Harness{}
	if _, err := h.Measure(machine.RunSpec{}); err == nil {
		t.Error("harness without machine accepted")
	}
}

func TestNonCycleCountersStableAcrossSessions(t *testing.T) {
	// Event counts are deterministic for a fixed layout; only cycles
	// carry noise. This is what makes cross-group merging sound.
	h := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaper}
	base := spec(t)
	a, err := h.Measure(base)
	if err != nil {
		t.Fatal(err)
	}
	base.NoiseSeed = 999
	b, err := h.Measure(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Errorf("event counts changed across sessions:\n%v\n%v", a.Events, b.Events)
	}
	if a.Cycles == b.Cycles {
		t.Error("cycles should vary across sessions")
	}
}

func TestMeasurementCheck(t *testing.T) {
	id := pmc.RunID{Layout: 7, LayoutSeed: 0xabc1, HeapSeed: 0xdef2, NoiseSeed: 0x1234}
	good := pmc.Measurement{Cycles: 2000, Instructions: 1000}
	good.Events[pmc.EvBranchMispredicts] = 40
	if err := good.Check(1000, id); err != nil {
		t.Fatalf("plausible measurement rejected: %v", err)
	}

	if err := good.Check(999, id); err == nil {
		t.Error("instruction-count mismatch accepted")
	}
	zeroCycles := good
	zeroCycles.Cycles = 0
	if err := zeroCycles.Check(1000, id); err == nil {
		t.Error("zero cycles for a nonempty trace accepted")
	}
	wild := good
	wild.Events[pmc.EvL1DMisses] = wild.Cycles + wild.Instructions + 1
	if err := wild.Check(1000, id); err == nil {
		t.Error("event count beyond the plausibility bound accepted")
	}
	// The empty measurement of an empty trace is fine.
	if err := (pmc.Measurement{}).Check(0, id); err != nil {
		t.Errorf("empty measurement of empty trace rejected: %v", err)
	}
}

// TestCheckErrorCarriesRunID pins the reproducibility contract: every
// Check failure names the layout index and the full seed tuple, so the
// offending run can be reproduced from the error string alone.
func TestCheckErrorCarriesRunID(t *testing.T) {
	id := pmc.RunID{Layout: 42, LayoutSeed: 0xdeadbeef, HeapSeed: 0xfeedface, NoiseSeed: 0xabad1dea}
	bad := pmc.Measurement{Cycles: 10, Instructions: 5}
	err := bad.Check(1000, id)
	if err == nil {
		t.Fatal("mismatched measurement accepted")
	}
	for _, want := range []string{"layout 42", "0xdeadbeef", "0xfeedface", "0xabad1dea"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Check error %q missing %q", err, want)
		}
	}
	// Zero-cycle and plausibility-bound failures carry the ID too.
	zero := pmc.Measurement{Instructions: 1000}
	if err := zero.Check(1000, id); err == nil || !strings.Contains(err.Error(), "0xdeadbeef") {
		t.Errorf("zero-cycle error missing seed tuple: %v", err)
	}
	wild := pmc.Measurement{Cycles: 1, Instructions: 1000}
	wild.Events[pmc.EvL2Misses] = 1 << 40
	if err := wild.Check(1000, id); err == nil || !strings.Contains(err.Error(), "layout 42") {
		t.Errorf("plausibility error missing layout index: %v", err)
	}
	// Outside a campaign the layout index is unknown and omitted.
	anon := pmc.RunID{Layout: -1, LayoutSeed: 0x77}
	if err := zero.Check(1000, anon); err == nil || strings.Contains(err.Error(), "layout -1") {
		t.Errorf("anonymous RunID should omit the layout index: %v", err)
	}
}

func TestHarnessMeasurementPassesCheck(t *testing.T) {
	h := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaper}
	s := spec(t)
	m, err := h.Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(s.Trace.Instrs, pmc.RunID{Layout: -1}); err != nil {
		t.Errorf("real measurement failed its own plausibility check: %v", err)
	}
}
