package pmc_test

import (
	"testing"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
)

// TestPaperFidelityBitIdenticalToNaive is the equivalence property behind
// the single-replay fast path: for every benchmark, layout and heap mode,
// FidelityPaper must produce a Measurement bit-identical (all events,
// cycles, runs and median selection) to the naive 15-run protocol. The
// noise transform depends only on the deterministic cycle count and the
// per-run seeds, so synthesizing the noisy observations from one
// simulation is exact, not an approximation.
func TestPaperFidelityBitIdenticalToNaive(t *testing.T) {
	benchmarks := []struct {
		name string
		prog *isa.Program
	}{
		{"many-branches", testprog.ManyBranches(80, 120)},
		{"memory", testprog.Memory(300)},
		{"cache-stress", testprog.CacheStress(64, 200)},
	}
	const layouts = 10
	for _, bm := range benchmarks {
		bm := bm
		t.Run(bm.name, func(t *testing.T) {
			tr, err := interp.Run(bm.prog, 1, interp.StopRule{Budget: 40000})
			if err != nil {
				t.Fatal(err)
			}
			builder := toolchain.NewBuilder(bm.prog, toolchain.CompileConfig{}, toolchain.LinkConfig{})
			for _, mode := range []heap.Mode{heap.ModeBump, heap.ModeRandomized} {
				fast := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaper}
				naive := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaperNaive}
				for seed := uint64(1); seed <= layouts; seed++ {
					exe, err := builder.Build(seed)
					if err != nil {
						t.Fatal(err)
					}
					spec := machine.RunSpec{
						Exe:       exe,
						Trace:     tr,
						HeapMode:  mode,
						HeapSeed:  seed * 31,
						NoiseSeed: seed * 17,
					}
					got, err := fast.Measure(spec)
					if err != nil {
						t.Fatal(err)
					}
					want, err := naive.Measure(spec)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("%s mode layout %d: single-replay measurement diverged\nfast:  %+v\nnaive: %+v",
							mode, seed, got, want)
					}
				}
			}
		})
	}
}

// TestPaperFidelityRunsPerGroup checks the equivalence holds for
// non-default run counts, where the median index moves.
func TestPaperFidelityRunsPerGroup(t *testing.T) {
	p := testprog.ManyBranches(40, 80)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 9, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, runs := range []int{1, 3, 7} {
		fast := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaper, RunsPerGroup: runs}
		naive := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaperNaive, RunsPerGroup: runs}
		spec := machine.RunSpec{Exe: exe, Trace: tr, NoiseSeed: 123}
		got, err := fast.Measure(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := naive.Measure(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("runs=%d: fast %+v != naive %+v", runs, got, want)
		}
		if got.Runs != 3*runs {
			t.Errorf("runs=%d: Runs = %d, want %d", runs, got.Runs, 3*runs)
		}
	}
}
