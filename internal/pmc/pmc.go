// Package pmc is the performance-monitoring-counter harness. It
// reproduces the measurement protocol of §5.5: "the Intel Xeon processor
// allows up to two user-defined microarchitectural events to be counted
// simultaneously. We are interested in more than two events, so we make
// multiple runs of each benchmark... We group the counters into three
// sets of two. For each set we run each benchmark five times and take the
// measurements given by the run with the median number of cycles."
//
// The harness also offers a fast fidelity for large campaigns, where the
// machine model's ability to expose every counter in one run is used
// directly; the paper-faithful protocol remains available and is what the
// protocol tests exercise.
package pmc

import (
	"errors"
	"fmt"

	"interferometry/internal/machine"
	"interferometry/internal/obs"
	"interferometry/internal/stats"
	"interferometry/internal/xrand"
)

// Event identifies one programmable counter event (§5.5 lists the five
// statistics collected; elapsed cycles are a fixed counter available in
// every run).
type Event uint8

// Counter events.
const (
	EvInstructions Event = iota
	EvBranchMispredicts
	EvL1IMisses
	EvL2Misses
	EvL1DMisses
	NumEvents
)

// String names the event like a PAPI preset.
func (e Event) String() string {
	switch e {
	case EvInstructions:
		return "INST_RETIRED"
	case EvBranchMispredicts:
		return "BR_MISP_RETIRED"
	case EvL1IMisses:
		return "L1I_MISSES"
	case EvL2Misses:
		return "L2_MISSES"
	case EvL1DMisses:
		return "L1D_MISSES"
	default:
		return fmt.Sprintf("Event(%d)", uint8(e))
	}
}

// read extracts the event's value from a counter snapshot.
func (e Event) read(c machine.Counters) uint64 {
	switch e {
	case EvInstructions:
		return c.Instructions
	case EvBranchMispredicts:
		return c.BranchMispredicts
	case EvL1IMisses:
		return c.L1IMisses
	case EvL2Misses:
		return c.L2Misses
	case EvL1DMisses:
		return c.L1DMisses
	default:
		panic("pmc: unknown event")
	}
}

// Group is one programming of the two counter slots.
type Group [2]Event

// StandardGroups is the paper's three groups of two covering the five
// events (one slot is spare).
var StandardGroups = []Group{
	{EvInstructions, EvBranchMispredicts},
	{EvL1IMisses, EvL2Misses},
	{EvL1DMisses, EvInstructions},
}

// Fidelity selects the measurement protocol.
type Fidelity uint8

// Fidelities.
const (
	// FidelityFast reads all counters in a single run. Cycles still carry
	// system noise; use it for large campaigns.
	FidelityFast Fidelity = iota
	// FidelityPaper reproduces the §5.5 protocol (RunsPerGroup runs per
	// standard group, keep the median-cycles run of each group) via a
	// single deterministic replay: all 3×RunsPerGroup runs share identical
	// deterministic state, and the noise model perturbs only the final
	// cycle scalar from a per-run seed, so the noisy observations can be
	// synthesized from one simulation. The resulting Measurement is
	// bit-identical to FidelityPaperNaive.
	FidelityPaper
	// FidelityPaperNaive literally performs every run of the §5.5
	// protocol. It exists as the reference for the equivalence tests and
	// costs 3×RunsPerGroup full simulations per measurement.
	FidelityPaperNaive
)

// DetSource supplies precomputed deterministic replays. The batched
// campaign path walks the trace once for a whole group of layouts
// (machine.Batch) and hands the per-layout results to its harnesses
// through this seam, so Measure skips the scalar simulation it would
// otherwise run. A source must return exactly what
// machine.RunDeterministic returns for the spec — same counters, a
// bit-identical raw cycle float — or report ok=false, in which case the
// harness simulates as usual.
type DetSource interface {
	// Det returns the deterministic counters and raw cycle count for
	// spec, or ok=false when the source has no replay for it.
	Det(spec machine.RunSpec) (c machine.Counters, det float64, ok bool)
}

// Harness measures executables on a machine. A harness is not safe for
// concurrent use; create one per goroutine.
type Harness struct {
	Machine *machine.Machine
	// RunsPerGroup is the paper's five. Zero means 5.
	RunsPerGroup int
	Fidelity     Fidelity
	// Metrics optionally counts the harness's work. Nil disables.
	Metrics *HarnessMetrics
	// Det optionally short-circuits the deterministic replay at
	// FidelityFast and FidelityPaper; a source hit is bit-identical to
	// simulating by the DetSource contract, so results do not depend on
	// whether one is wired. FidelityPaperNaive ignores it — that
	// fidelity exists to literally execute every protocol run.
	Det DetSource

	// Per-measurement scratch, reused across Measure calls.
	cycles []float64
	noisy  []uint64
	snaps  []machine.Counters
}

// det resolves one deterministic replay: from the Det source when it has
// the spec, otherwise by simulating.
func (h *Harness) det(spec machine.RunSpec) (machine.Counters, float64, error) {
	if h.Det != nil {
		if c, d, ok := h.Det.Det(spec); ok {
			return c, d, nil
		}
	}
	return h.Machine.RunDeterministic(spec)
}

// HarnessMetrics are the harness's observability counters, resolved by
// the caller (internal/core builds them from its obs registry; pmc
// itself stays ignorant of metric names). Any field — or the whole
// struct — may be nil.
type HarnessMetrics struct {
	// Measurements counts Measure calls that completed successfully.
	Measurements *obs.Counter
	// Simulations counts full deterministic replays consumed — executed
	// on this harness's machine, or served by its Det source (which ran
	// the replay inside a batched trace walk).
	Simulations *obs.Counter
	// SynthRuns counts protocol runs synthesized from a shared
	// simulation instead of simulated (the FidelityPaper fast path).
	SynthRuns *obs.Counter
}

// RunID identifies one measurement for error reporting: the campaign
// layout index and the full seed tuple, enough to reproduce a failed
// invariant from the message alone.
type RunID struct {
	// Layout is the campaign-global layout index; negative means unknown
	// (a measurement made outside a campaign).
	Layout     int
	LayoutSeed uint64
	HeapSeed   uint64
	NoiseSeed  uint64
}

// done records one successful measurement: how many full simulations it
// cost and how many protocol runs were synthesized instead of simulated.
func (hm *HarnessMetrics) done(sims, synth uint64) {
	if hm == nil {
		return
	}
	hm.Measurements.Inc()
	hm.Simulations.Add(sims)
	hm.SynthRuns.Add(synth)
}

func (id RunID) String() string {
	if id.Layout < 0 {
		return fmt.Sprintf("layout seed %#x, heap seed %#x, noise seed %#x",
			id.LayoutSeed, id.HeapSeed, id.NoiseSeed)
	}
	return fmt.Sprintf("layout %d (layout seed %#x, heap seed %#x, noise seed %#x)",
		id.Layout, id.LayoutSeed, id.HeapSeed, id.NoiseSeed)
}

// Measurement is the merged counter readout of one layout measurement,
// plus derived metrics.
type Measurement struct {
	Cycles       uint64
	Instructions uint64
	Events       [NumEvents]uint64
	// Runs is the total number of protocol runs the measurement reflects
	// (the paper's 15 at paper fidelity). FidelityPaper synthesizes their
	// observations from a single simulation, so Runs can exceed the
	// number of simulations actually executed.
	Runs int
}

// CPI returns cycles per instruction.
func (m Measurement) CPI() float64 {
	if m.Instructions == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instructions)
}

// PKI returns the event count per 1000 instructions.
func (m Measurement) PKI(e Event) float64 {
	if m.Instructions == 0 {
		return 0
	}
	return float64(m.Events[e]) / float64(m.Instructions) * 1000
}

// MPKI returns branch mispredictions per 1000 instructions.
func (m Measurement) MPKI() float64 { return m.PKI(EvBranchMispredicts) }

// Check validates the internal plausibility of a measurement against the
// trace it claims to measure: the retired-instruction counter is exact by
// construction, cycles cannot be zero for a nonempty trace, and no event
// fires more than once per instruction-and-miss opportunity allows
// (loosely, events cannot exceed cycles + instructions). A violation
// marks a corrupted readout that the campaign supervisor re-measures
// rather than feeding to the regression. The run's identity — layout
// index and seed tuple — is embedded in every message so the failure is
// reproducible from the error string alone.
func (m Measurement) Check(wantInstrs uint64, id RunID) error {
	if m.Instructions != wantInstrs {
		return fmt.Errorf("pmc: %v: measurement retired %d instructions, trace has %d", id, m.Instructions, wantInstrs)
	}
	if wantInstrs > 0 && m.Cycles == 0 {
		return fmt.Errorf("pmc: %v: measurement has zero cycles for a nonempty trace", id)
	}
	for e := Event(0); e < NumEvents; e++ {
		if limit := m.Cycles + m.Instructions; m.Events[e] > limit {
			return fmt.Errorf("pmc: %v: event %s count %d exceeds plausibility bound %d", id, e, m.Events[e], limit)
		}
	}
	return nil
}

// Measure runs the protocol for one layout. The spec's NoiseSeed is used
// as a base; individual runs derive their own seeds from it, so a
// different base models a different measurement session.
func (h *Harness) Measure(spec machine.RunSpec) (Measurement, error) {
	if h.Machine == nil {
		return Measurement{}, errors.New("pmc: harness has no machine")
	}
	runs := h.RunsPerGroup
	if runs <= 0 {
		runs = 5
	}
	switch h.Fidelity {
	case FidelityFast:
		c, det, err := h.det(spec)
		if err != nil {
			return Measurement{}, err
		}
		if !spec.DisableNoise {
			c.Cycles = h.Machine.NoisyCycles(spec, det)
		}
		var m Measurement
		m.Cycles = c.Cycles
		m.Instructions = c.Instructions
		for e := Event(0); e < NumEvents; e++ {
			m.Events[e] = e.read(c)
		}
		m.Runs = 1
		h.Metrics.done(1, 0)
		return m, nil

	case FidelityPaper:
		// Single-replay fast path: every protocol run shares identical
		// deterministic state — the per-run NoiseSeed perturbs only the
		// final cycle scalar — so one simulation plus the per-run noise
		// transform reproduces all 3×runs observations exactly.
		c, det, err := h.det(spec)
		if err != nil {
			return Measurement{}, err
		}
		h.cycles = resize(h.cycles, runs)
		h.noisy = resize(h.noisy, runs)
		var m Measurement
		var seen [NumEvents]bool
		for gi, g := range StandardGroups {
			for r := 0; r < runs; r++ {
				rspec := spec
				rspec.NoiseSeed = xrand.Mix(spec.NoiseSeed, uint64(gi), uint64(r))
				h.noisy[r] = h.Machine.NoisyCycles(rspec, det)
				h.cycles[r] = float64(h.noisy[r])
			}
			med := stats.MedianIndex(h.cycles)
			if gi == 0 {
				// The first group's median run provides cycles and the
				// retired-instruction reference.
				m.Cycles = h.noisy[med]
				m.Instructions = c.Instructions
			}
			for _, e := range g {
				if !seen[e] {
					m.Events[e] = e.read(c)
					seen[e] = true
				}
			}
			m.Runs += runs
		}
		h.Metrics.done(1, uint64(m.Runs))
		return m, nil

	case FidelityPaperNaive:
		var m Measurement
		var seen [NumEvents]bool
		h.cycles = resize(h.cycles, runs)
		h.snaps = resize(h.snaps, runs)
		for gi, g := range StandardGroups {
			for r := 0; r < runs; r++ {
				rspec := spec
				rspec.NoiseSeed = xrand.Mix(spec.NoiseSeed, uint64(gi), uint64(r))
				c, err := h.Machine.Run(rspec)
				if err != nil {
					return Measurement{}, err
				}
				h.cycles[r] = float64(c.Cycles)
				h.snaps[r] = c
			}
			med := h.snaps[stats.MedianIndex(h.cycles)]
			if gi == 0 {
				// The first group's median run provides cycles and the
				// retired-instruction reference.
				m.Cycles = med.Cycles
				m.Instructions = med.Instructions
			}
			for _, e := range g {
				if !seen[e] {
					m.Events[e] = e.read(med)
					seen[e] = true
				}
			}
			m.Runs += runs
		}
		h.Metrics.done(uint64(m.Runs), 0)
		return m, nil

	default:
		return Measurement{}, fmt.Errorf("pmc: unknown fidelity %d", h.Fidelity)
	}
}

// resize returns s with length n, reusing its capacity when possible.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
