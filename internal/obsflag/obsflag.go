// Package obsflag wires the observability layer into a command's flag
// set. Both cmd/interferometry and cmd/report expose the same four
// flags through it:
//
//	-metrics-out FILE   write the metrics registry on exit
//	                    (.json extension = JSON, anything else = Prometheus text)
//	-trace-out FILE     write a chrome://tracing-compatible span trace
//	-progress           report campaign progress lines to stderr
//	-pprof ADDR         serve net/http/pprof on ADDR (e.g. localhost:6060)
//
// The package lives outside internal/obs so that packages on the
// measurement path (core, pmc, toolchain) never link net/http.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"strings"
	"time"

	"interferometry/internal/obs"
)

// Flags holds the observability flag values after parsing.
type Flags struct {
	MetricsOut string
	TraceOut   string
	Progress   bool
	Pprof      string

	traceFile io.WriteCloser
}

// Register installs the four observability flags on fs (use
// flag.CommandLine for a command's default set).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write metrics on exit (.json extension = JSON, otherwise Prometheus text)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a chrome://tracing span trace to this file")
	fs.BoolVar(&f.Progress, "progress", false, "report campaign progress to stderr")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Observer builds the observer the flags ask for, creating the trace
// file and starting the pprof server as needed. It returns nil when no
// flag requests instrumentation, which keeps the hot paths untouched.
// The progress label names the run in progress lines.
func (f *Flags) Observer(progressLabel string) (*obs.Observer, error) {
	if f.Pprof != "" {
		go func() {
			if err := http.ListenAndServe(f.Pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	o := &obs.Observer{}
	if f.MetricsOut != "" {
		o.Metrics = obs.NewMetrics()
	}
	if f.TraceOut != "" {
		file, err := os.Create(f.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("trace-out: %w", err)
		}
		f.traceFile = file
		o.Tracer = obs.NewTracer(file)
	}
	if f.Progress {
		o.Progress = obs.NewProgress(os.Stderr, progressLabel, 0, time.Second)
	}
	if o.Metrics == nil && o.Tracer == nil && o.Progress == nil {
		return nil, nil
	}
	return o, nil
}

// Close finishes the observer: the final progress line, the trace file
// terminator, and the metrics dump in the format the -metrics-out
// extension selects. Safe on a nil observer.
func (f *Flags) Close(o *obs.Observer) error {
	if o == nil {
		return nil
	}
	o.Prog().Finish()
	if o.Tracer != nil {
		if err := o.Tracer.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.traceFile.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if f.MetricsOut != "" && o.Metrics != nil {
		file, err := os.Create(f.MetricsOut)
		if err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		if strings.HasSuffix(f.MetricsOut, ".json") {
			err = o.Metrics.WriteJSON(file)
		} else {
			err = o.Metrics.WritePrometheus(file)
		}
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	return nil
}
