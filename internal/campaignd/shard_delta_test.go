package campaignd_test

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/core"
	"interferometry/internal/faultinject"
)

// startDeltaWorkers launches n in-process remote workers with the
// delta-replay engine forced on for their batched leases.
func startDeltaWorkers(t *testing.T, coordinator string, httpc *http.Client, n, batch int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &campaignd.Worker{
				Coordinator: coordinator,
				HTTP:        httpc,
				Batch:       batch,
				Delta:       core.DeltaOn,
				Wait:        100 * time.Millisecond,
			}
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// TestShardedDeltaMatchesSingleProcess is the sharded leg of the delta
// determinism matrix: 2 remote workers leasing up to 4 tasks per pull
// with the delta engine forced on must produce the exact dataset bytes
// (provenance columns included) of a clean single-process run — the
// engine choice, like batching and sharding, must not move a byte.
func TestShardedDeltaMatchesSingleProcess(t *testing.T) {
	spec := testSpec(10)
	want := datasetCSV(t, cleanDataset(t, spec))

	_, client := startService(t, campaignd.Config{NoLocalWorkers: true})
	startDeltaWorkers(t, client.Base, client.HTTP, 2, 4)
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("sharded delta campaign ended %s: %s", st.State, st.Error)
	}
	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sharded delta dataset differs from single-process run:\n--- sharded ---\n%s--- clean ---\n%s", got, want)
	}
}

// TestChaosSoakDeltaRound exercises the -chaos-delta path: one sharded
// soak round with every worker's delta engine forced on, under injected
// faults, must stay byte-identical to the clean reference.
func TestChaosSoakDeltaRound(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	var out bytes.Buffer
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:         testSpec(6),
		Rounds:       1,
		Seed:         0xde17a,
		ShardWorkers: 2,
		WorkerBatch:  3,
		WorkerDelta:  core.DeltaOn,
		Rates: faultinject.Rates{
			Error: 0.2, Panic: 0.1,
			MaxFaults: 2,
		},
		Timeout: time.Minute,
		Out:     &out,
	})
	if err != nil {
		t.Fatalf("delta soak round: %v\n%s", err, out.String())
	}
}
