package campaignd_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue/backoff"
	"interferometry/internal/obs"
	"interferometry/internal/progen"
	"interferometry/internal/results"
)

// testSpec is a campaign small enough for unit tests: the explicit
// budget overrides the small scale's default.
func testSpec(layouts int) campaignd.JobSpec {
	return campaignd.JobSpec{Benchmark: "429.mcf", Layouts: layouts, Budget: 60_000}
}

// cleanDataset runs the spec's campaign in a single process — the
// ground truth every service test compares against.
func cleanDataset(t *testing.T, spec campaignd.JobSpec) *core.Dataset {
	t.Helper()
	ps, ok := progen.ByName(spec.Benchmark)
	if !ok {
		t.Fatalf("unknown benchmark %s", spec.Benchmark)
	}
	prog, err := progen.Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.RunCampaign(core.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    spec.Budget,
		Layouts:   spec.Layouts,
		Fidelity:  experiments.Small.Fidelity,
		BaseSeed:  0x1f2e3d4c,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func datasetCSV(t *testing.T, ds *core.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := results.WriteDatasetCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startService builds a server, starts its workers, and serves its API
// over a test listener. The cleanup drains the service.
func startService(t *testing.T, cfg campaignd.Config) (*campaignd.Server, *campaignd.Client) {
	t.Helper()
	srv, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		hs.Close()
	})
	return srv, &campaignd.Client{Base: hs.URL, HTTP: hs.Client()}
}

func waitDone(t *testing.T, client *campaignd.Client, id string) campaignd.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := client.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServiceMatchesSingleProcess: a clean service run produces the
// exact bytes (provenance columns included) of a clean single-process
// run of the same spec.
func TestServiceMatchesSingleProcess(t *testing.T) {
	spec := testSpec(6)
	want := datasetCSV(t, cleanDataset(t, spec))

	_, client := startService(t, campaignd.Config{Workers: 3})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}
	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("service dataset differs from single-process run:\n--- service ---\n%s--- clean ---\n%s", got, want)
	}

	// Resubmitting the identical spec is idempotent: same campaign.
	st2, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID || st2.State != campaignd.StateDone {
		t.Errorf("resubmission created %+v instead of returning the done campaign", st2)
	}
}

// TestOverloadShedsWithRetryAfter: a fan-out the queue cannot hold is
// rejected whole with 429 + Retry-After, the shed is counted, and after
// a drain every queue gauge is back to zero — no leaked tasks or leases.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	srv, client := startService(t, campaignd.Config{
		Workers:       2,
		QueueCapacity: 4,
		Obs:           o,
	})
	ctx := context.Background()

	// 6 layouts > capacity 4: shed atomically, nothing admitted.
	_, err := client.Submit(ctx, testSpec(6))
	var re *campaignd.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("overload returned %v, want *RetryError", err)
	}
	if re.After <= 0 {
		t.Errorf("Retry-After hint %v, want positive", re.After)
	}
	if v := o.Counter("campaignd_shed_total", "").Value(); v != 1 {
		t.Errorf("shed counter = %d, want 1", v)
	}
	if d := o.Gauge("campaignd_queue_depth", "").Value(); d != 0 {
		t.Errorf("queue depth %v after an all-or-nothing shed", d)
	}

	// A fitting campaign still goes through and completes.
	st, err := client.Submit(ctx, testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}

	srv.Drain()
	<-srv.Done()
	if d := o.Gauge("campaignd_queue_depth", "").Value(); d != 0 {
		t.Errorf("queue depth %v after drain, want 0", d)
	}
	if l := o.Gauge("campaignd_leases_active", "").Value(); l != 0 {
		t.Errorf("active leases %v after drain, want 0", l)
	}
}

// TestRetriesConvergeUnderFaults: error and panic bursts in both seams
// burn retries but the finished dataset's measurements are byte-identical
// to the clean run, with the retries visible in the attempts column.
func TestRetriesConvergeUnderFaults(t *testing.T) {
	spec := testSpec(8)
	clean := cleanDataset(t, spec)

	_, client := startService(t, campaignd.Config{
		Workers:     2,
		MaxAttempts: 5,
		Backoff:     backoff.Policy{Base: time.Millisecond, Cap: 5 * time.Millisecond, Jitter: 0.5},
		Faults: faultinject.New(31, faultinject.Config{
			Build:   faultinject.Rates{Error: 0.3, Panic: 0.1, MaxFaults: 2},
			Measure: faultinject.Rates{Error: 0.3, MaxFaults: 2},
		}),
	})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}
	got, err := client.Measurements(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := results.WriteMeasurementsCSV(&want, clean); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("faulted service measurements differ from the clean run")
	}

	full, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := results.ReadDatasetCSV(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for _, r := range rows {
		if r.Status == "retried" {
			retried++
		}
	}
	if retried == 0 {
		t.Error("30%+ fault rates never forced a retry")
	}
}

// TestDeadlinePropagates: a campaign with an impossible deadline fails
// with a deadline error instead of running forever, and its tasks drain.
func TestDeadlinePropagates(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	srv, client := startService(t, campaignd.Config{
		Workers: 1,
		// Slow faults stretch every execution so the 1ms deadline
		// expires while tasks are still queued.
		Faults: faultinject.New(5, faultinject.Config{
			Build: faultinject.Rates{Slow: 1, SlowDelay: 20 * time.Millisecond, MaxFaults: 1 << 20},
		}),
		Obs: o,
	})
	spec := testSpec(8)
	spec.DeadlineMS = 1
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateFailed {
		t.Fatalf("campaign ended %s, want failed on deadline", st.State)
	}
	if st.Error == "" {
		t.Error("failed campaign carries no error")
	}
	srv.Drain()
	<-srv.Done()
	if l := o.Gauge("campaignd_leases_active", "").Value(); l != 0 {
		t.Errorf("active leases %v after deadline drain", l)
	}
}

// TestGracefulDrainOnSIGTERM is the kill-mid-campaign test: a real
// SIGTERM lands while layouts are still queued; the drain finishes
// leased work and flushes the checkpoint; a second service instance over
// the same checkpoint root resumes and finishes; the final dataset is
// byte-identical to an uninterrupted single-process run.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	spec := testSpec(10)
	want := datasetCSV(t, cleanDataset(t, spec))
	root := t.TempDir()

	srv, client := startService(t, campaignd.Config{
		Workers:        1,
		CheckpointRoot: root,
		// Slow every build a little so the campaign outlives submission
		// and the signal lands mid-flight.
		Faults: faultinject.New(9, faultinject.Config{
			Build: faultinject.Rates{Slow: 1, SlowDelay: 10 * time.Millisecond, MaxFaults: 1 << 20},
		}),
	})
	stopSignals := srv.DrainOnSignal(syscall.SIGTERM)
	defer stopSignals()

	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let some layouts complete, then deliver a real SIGTERM.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := client.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Completed >= 2 {
			break
		}
		if cur.State != campaignd.StateRunning {
			t.Fatalf("campaign ended %s before the signal: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not finish after SIGTERM")
	}

	// Admission is stopped; the interrupted campaign says how to resume.
	if _, err := client.Submit(ctx, testSpec(2)); !errors.Is(err, campaignd.ErrDraining) {
		t.Fatalf("drained service accepted a submission: %v", err)
	}
	cur, err := client.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.State != campaignd.StateInterrupted {
		t.Fatalf("campaign state after drain = %s, want interrupted", cur.State)
	}
	if cur.Completed == 0 || cur.Completed == spec.Layouts {
		t.Fatalf("drain completed %d of %d layouts; the test needs a partial campaign", cur.Completed, spec.Layouts)
	}

	// A fresh instance over the same checkpoint root resumes (clean this
	// time) and the result is byte-identical to the uninterrupted run.
	_, client2 := startService(t, campaignd.Config{
		Workers:        2,
		CheckpointRoot: root,
	})
	st2, err := client2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmitted spec got id %s, want %s", st2.ID, st.ID)
	}
	if st2.Restored == 0 {
		t.Error("resumed campaign restored nothing from the checkpoint")
	}
	if st2 = waitDone(t, client2, st2.ID); st2.State != campaignd.StateDone {
		t.Fatalf("resumed campaign ended %s: %s", st2.State, st2.Error)
	}
	got, err := client2.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("dataset after SIGTERM + resume differs from the uninterrupted run")
	}
}

// TestLeaseExpiryRecovers: with heartbeats disabled and executions
// slower than the lease, leases expire mid-run and tasks are re-executed
// elsewhere — the dedupe keeps the dataset identical and the drain
// leaves no lease residue.
func TestLeaseExpiryRecovers(t *testing.T) {
	spec := testSpec(4)
	clean := cleanDataset(t, spec)
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	srv, client := startService(t, campaignd.Config{
		Workers:        2,
		Lease:          20 * time.Millisecond,
		HeartbeatEvery: -1, // force expiry under live workers
		Faults: faultinject.New(13, faultinject.Config{
			Measure: faultinject.Rates{Slow: 1, SlowDelay: 50 * time.Millisecond, MaxFaults: 1 << 20},
		}),
		Obs: o,
	})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}
	if v := o.Counter("campaignd_lease_expiries_total", "").Value(); v == 0 {
		t.Error("no lease ever expired; the scenario did not exercise reaping")
	}
	got, err := client.Measurements(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := results.WriteMeasurementsCSV(&want, clean); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("measurements after lease expiries differ from the clean run")
	}
	srv.Drain()
	<-srv.Done()
	if l := o.Gauge("campaignd_leases_active", "").Value(); l != 0 {
		t.Errorf("active leases %v after drain, want 0", l)
	}
	if d := o.Gauge("campaignd_queue_depth", "").Value(); d != 0 {
		t.Errorf("queue depth %v after drain, want 0", d)
	}
}

// TestEndpoints covers the health and introspection surface.
func TestEndpoints(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	srv, client := startService(t, campaignd.Config{Workers: 1, Obs: o})
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.HTTP.Get(client.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz = %d before drain", code)
	}
	if code, body := get("/queuez"); code != 200 || !bytes.Contains([]byte(body), []byte(`"breaker_build": "closed"`)) {
		t.Errorf("/queuez = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !bytes.Contains([]byte(body), []byte("campaignd_queue_depth")) {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, _ := get("/campaigns/nope"); code != 404 {
		t.Errorf("unknown campaign = %d, want 404", code)
	}

	// An unfinished campaign's result is 202 + Retry-After.
	spec := testSpec(4)
	spec.DeadlineMS = 60_000
	st, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.HTTP.Get(client.Base + "/campaigns/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		// Completed already — fine; otherwise it must carry the hint.
	} else if resp.StatusCode != 202 || resp.Header.Get("Retry-After") == "" {
		t.Errorf("running result = %d (Retry-After %q), want 202 with a hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	waitDone(t, client, st.ID)

	srv.Drain()
	<-srv.Done()
	if code, _ := get("/readyz"); code != 503 {
		t.Errorf("/readyz = %d after drain, want 503", code)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz = %d after drain, want 200 while serving", code)
	}
}
