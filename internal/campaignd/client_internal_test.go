package campaignd

import (
	"net/http"
	"testing"
	"time"
)

func TestRetryAfter(t *testing.T) {
	now := time.Date(2026, time.March, 1, 12, 0, 0, 0, time.UTC)
	httpDate := func(d time.Duration) string {
		return now.Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"empty", "", defaultRetryAfter},
		{"garbage", "soon", defaultRetryAfter},
		{"delta seconds", "7", 7 * time.Second},
		{"zero delta", "0", defaultRetryAfter},
		{"negative delta", "-3", defaultRetryAfter},
		{"huge delta clamps", "86400", maxRetryAfter},
		{"http date", httpDate(30 * time.Second), 30 * time.Second},
		// A date at or before now means the wait already elapsed (or the
		// server's clock is behind ours): retry immediately, never a
		// negative or default wait.
		{"http date now", httpDate(0), 0},
		{"http date in the past", httpDate(-time.Minute), 0},
		{"http date far in the past", httpDate(-24 * time.Hour), 0},
		{"http date far out clamps", httpDate(24 * time.Hour), maxRetryAfter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfter(tc.h, now); got != tc.want {
				t.Errorf("retryAfter(%q) = %v, want %v", tc.h, got, tc.want)
			}
		})
	}
}
