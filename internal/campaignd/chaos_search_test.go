package campaignd_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/faultinject"
)

// TestChaosSoakSearch is the search-campaign soak: every round runs a
// full service driving an evolutionary search under a fault storm of
// error bursts, panics and latency spikes, and requires the canonical
// generations CSV and the summary report to stay byte-identical to a
// clean single-process core.RunSearch.
func TestChaosSoakSearch(t *testing.T) {
	var out bytes.Buffer
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:    searchSpec(),
		Rounds:  2,
		Seed:    0x5ea4c,
		Workers: 2,
		Rates: faultinject.Rates{
			Error: 0.25, Panic: 0.1,
			Spike: 0.3, SpikeP99: 2 * time.Millisecond,
			MaxFaults: 2,
		},
		Timeout: time.Minute,
		Out:     &out,
	})
	t.Logf("soak output:\n%s", out.String())
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "soak PASS") {
		t.Error("soak report missing the PASS line")
	}
	if strings.Contains(report, "0 faults") {
		t.Error("a soak round injected no faults")
	}
}

// TestChaosSoakSearchByzantine is the trust soak's search variant: 1 of
// 3 sharded workers lies about every search individual it measures. The
// liar must be quarantined and the generations CSV plus the summary
// report must still match the clean single-process search bytes.
func TestChaosSoakSearchByzantine(t *testing.T) {
	var out bytes.Buffer
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:             searchSpec(),
		Rounds:           1,
		Seed:             0xb5ea,
		ShardWorkers:     3,
		ByzantineWorkers: 1,
		Timeout:          time.Minute,
		Out:              &out,
	})
	t.Logf("soak output:\n%s", out.String())
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "soak PASS") {
		t.Error("soak report missing the PASS line")
	}
	if !strings.Contains(report, "1 byzantine workers quarantined") {
		t.Error("soak report missing the quarantine line")
	}
}

// TestChaosSoakSearchCoordinatorKills hard-kills the coordinator twice
// per round mid-trajectory (Server.Kill — no drain, no flush) and
// restarts it on the same WAL dir. Each restart must resume the search
// from the journal and its generation checkpoint on its own, and the
// streamed generations plus the report must still match the clean
// single-process bytes — the in-flight generation's lost progress is
// re-derived, never re-randomized.
func TestChaosSoakSearchCoordinatorKills(t *testing.T) {
	var out bytes.Buffer
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:             searchSpec(),
		Rounds:           2,
		Seed:             0x4b11d,
		Workers:          2,
		CoordinatorKills: 2,
		Rates: faultinject.Rates{
			Error:     0.15,
			MaxFaults: 2,
		},
		Timeout: time.Minute,
		Out:     &out,
	})
	t.Logf("soak output:\n%s", out.String())
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "soak PASS") {
		t.Error("soak report missing the PASS line")
	}
	if !strings.Contains(report, "coordinator kill") {
		t.Error("soak report shows no coordinator kills")
	}
}
