package campaignd_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"interferometry/internal/campaignd"
)

// postSpec posts a raw body to /campaigns, bypassing the typed client so
// malformed requests reach the handler as-is.
func postSpec(t *testing.T, client *campaignd.Client, body []byte) *http.Response {
	t.Helper()
	resp, err := client.HTTP.Post(client.Base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// wantBadRequest asserts a 400 with a JSON error body mentioning want.
func wantBadRequest(t *testing.T, resp *http.Response, want string) {
	t.Helper()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("400 body is not the JSON error shape: %v", err)
	}
	if !strings.Contains(er.Error, want) {
		t.Fatalf("error %q does not mention %q", er.Error, want)
	}
}

func TestSubmitRejectsUnknownField(t *testing.T) {
	_, client := startService(t, campaignd.Config{Workers: 1})
	// "layout" for "layouts": without DisallowUnknownFields this would
	// silently run a default-sized campaign.
	resp := postSpec(t, client, []byte(`{"benchmark":"429.mcf","layout":8}`))
	wantBadRequest(t, resp, "layout")
}

func TestSubmitRejectsOversizedBody(t *testing.T) {
	_, client := startService(t, campaignd.Config{Workers: 1})
	big, err := json.Marshal(map[string]any{
		"benchmark": strings.Repeat("x", 2<<20),
		"layouts":   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := postSpec(t, client, big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("2MiB spec: status = %s, want 400", resp.Status)
	}
}

func TestSubmitRejectsMalformedJSON(t *testing.T) {
	_, client := startService(t, campaignd.Config{Workers: 1})
	resp := postSpec(t, client, []byte(`{"benchmark":`))
	wantBadRequest(t, resp, "bad spec")
}
