package campaignd_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/faultinject"
)

// TestChaosSoak runs the real harness: every round spins up a full
// service (HTTP listener, queue, breakers), batters it with error
// bursts, panics and latency spikes, and requires the measurement export
// to stay byte-identical to a clean single-process run.
func TestChaosSoak(t *testing.T) {
	var out bytes.Buffer
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:    testSpec(6),
		Rounds:  2,
		Seed:    0xc4a05,
		Workers: 2,
		Rates: faultinject.Rates{
			Error: 0.25, Panic: 0.1,
			Spike: 0.3, SpikeP99: 2 * time.Millisecond,
			MaxFaults: 2,
		},
		Timeout: time.Minute,
		Out:     &out,
	})
	t.Logf("soak output:\n%s", out.String())
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "soak PASS") {
		t.Error("soak report missing the PASS line")
	}
	// The soak only proves something if faults actually fired.
	if strings.Contains(report, "0 faults") {
		t.Error("a soak round injected no faults")
	}
}

// TestChaosSoakShardedBatched is the batched scale-out soak: every round
// runs as a pure coordinator with 2 remote workers, each leasing up to 3
// tasks per pull and sharing one batched trace walk per group, under the
// same fault storm — and the export must still match the clean
// single-process bytes.
func TestChaosSoakShardedBatched(t *testing.T) {
	var out bytes.Buffer
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:         testSpec(8),
		Rounds:       2,
		Seed:         0xba7c4,
		ShardWorkers: 2,
		WorkerBatch:  3,
		Rates: faultinject.Rates{
			Error: 0.2, Panic: 0.1,
			MaxFaults: 2,
		},
		Timeout: time.Minute,
		Out:     &out,
	})
	t.Logf("soak output:\n%s", out.String())
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "soak PASS") {
		t.Error("soak report missing the PASS line")
	}
	if strings.Contains(report, "0 faults") {
		t.Error("a soak round injected no faults")
	}
}

// TestChaosSoakByzantine is the trust soak: 2 of 4 sharded workers lie
// about every result they report. The round stages the fleet — liars
// first, honest workers only after every liar is quarantined — and the
// export must still match the clean single-process bytes, with the
// provenance (attempts) export proving no requeue was ever charged.
func TestChaosSoakByzantine(t *testing.T) {
	var out bytes.Buffer
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:             testSpec(6),
		Rounds:           2,
		Seed:             0xb42a,
		ShardWorkers:     4,
		ByzantineWorkers: 2,
		Timeout:          time.Minute,
		Out:              &out,
	})
	t.Logf("soak output:\n%s", out.String())
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "soak PASS") {
		t.Error("soak report missing the PASS line")
	}
	if !strings.Contains(report, "2 byzantine workers quarantined") {
		t.Error("soak report missing the quarantine line")
	}
}

// TestSoakRejectsByzantineWithoutHonestWorkers: a fleet of nothing but
// liars can never finish the campaign, so the soak refuses it up front.
func TestSoakRejectsByzantineWithoutHonestWorkers(t *testing.T) {
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:             testSpec(2),
		ShardWorkers:     2,
		ByzantineWorkers: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "byzantine") {
		t.Fatalf("soak accepted an all-liar fleet: %v", err)
	}
}

// TestSoakRejectsCorruptFaults: silent measurement corruption cannot be
// detected by the service, so the soak refuses to claim byte-identity
// under it.
func TestSoakRejectsCorruptFaults(t *testing.T) {
	err := campaignd.Soak(campaignd.SoakConfig{
		Spec:  testSpec(2),
		Rates: faultinject.Rates{Corrupt: 0.5},
	})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("soak accepted corrupt faults: %v", err)
	}
}
