package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"sync"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue/backoff"
	"interferometry/internal/obs"
	"interferometry/internal/toolchain"
)

// Worker is one remote execution process: it pulls leased layout tasks
// from a coordinator's /worker/* endpoints, executes them through its
// own core.LayoutRunner, and streams the observations back. Workers are
// stateless between tasks — every per-layout input re-derives from the
// spec the lease carries — so any number of them can join, leave or die
// mid-campaign without changing a byte of the finished dataset: the
// coordinator's lease reaping requeues whatever a dead worker held, and
// the re-execution derives identical results.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://localhost:8347".
	Coordinator string
	// ID identifies this worker to the coordinator's health scoring:
	// rejected results count against it and a condemned ID's lease
	// requests are refused (403). Empty means "<hostname>-<pid>".
	ID string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Parallel is the number of concurrent task loops (and the worker's
	// runner slot count). Zero or negative means 1.
	Parallel int
	// Batch is the maximum tasks a loop leases per pull (capped at 64,
	// the batched replay's lane limit). After one task arrives, up to
	// Batch-1 more are leased without waiting; leases from the same
	// campaign then share one batched trace walk (core.LayoutRunner.
	// PrimeBatch) before measuring, which changes throughput but not a
	// byte of any result. Zero or one leases singly.
	Batch int
	// Delta selects the delta-replay engine for the worker's campaigns
	// (core.CampaignConfig.Delta): the zero value is auto. Like batching
	// it changes throughput but never a byte of any result.
	Delta core.DeltaMode
	// Wait bounds each lease long poll. Zero means the coordinator's
	// default.
	Wait time.Duration
	// Backoff spaces retries of coordinator requests (lease polls after
	// transport errors, completion reports). The jitter is seeded by
	// the worker's ID, so a fleet that loses its coordinator does not
	// thunder back in lockstep. The zero policy means {50ms, 2s, 0.5}.
	Backoff backoff.Policy
	// Cache optionally backs the worker's build seam with a layout
	// artifact store, shared with other workers on the same host.
	Cache toolchain.LayoutCache
	// Faults optionally injects faults into the worker's seams — the
	// sharded chaos soak's hook. Nil runs clean.
	Faults *faultinject.Injector
	// Tamper, when set, corrupts every outgoing observation through the
	// liar's deterministic lie schedule — the byzantine soak's hook for
	// workers that answer wrong instead of dying. Nil reports honestly.
	Tamper *faultinject.Liar
	// Obs observes the worker's campaigns; nil runs unobserved.
	Obs *obs.Observer

	idOnce sync.Once
	id     string
}

func (w *Worker) parallel() int {
	if w.Parallel <= 0 {
		return 1
	}
	return w.Parallel
}

func (w *Worker) batch() int {
	if w.Batch <= 1 {
		return 1
	}
	if w.Batch > 64 {
		return 64
	}
	return w.Batch
}

func (w *Worker) http() *http.Client {
	if w.HTTP != nil {
		return w.HTTP
	}
	return http.DefaultClient
}

// workerID resolves the worker's identity once: the configured ID, or
// "<hostname>-<pid>" so every process is distinguishable by default.
func (w *Worker) workerID() string {
	w.idOnce.Do(func() {
		w.id = w.ID
		if w.id == "" {
			host, err := os.Hostname()
			if err != nil || host == "" {
				host = "worker"
			}
			w.id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
	})
	return w.id
}

func (w *Worker) backoff() backoff.Policy {
	if w.Backoff == (backoff.Policy{}) {
		return backoff.Policy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.5}
	}
	return w.Backoff
}

// hashString folds a string into a backoff seed.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Run pulls and executes tasks until the coordinator drains or ctx
// ends. Connection errors are retried with a short pause — a worker
// outliving a coordinator restart just resumes pulling.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return errors.New("campaignd: worker needs a coordinator URL")
	}
	runners := &workerRunners{w: w}
	var wg sync.WaitGroup
	for slot := 0; slot < w.parallel(); slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.loop(ctx, runners, slot)
		}(slot)
	}
	wg.Wait()
	return nil
}

// loop is one task goroutine; slot doubles as the runner's measurement
// slot so concurrent tasks never share harness state.
func (w *Worker) loop(ctx context.Context, runners *workerRunners, slot int) {
	fails := 0
	for ctx.Err() == nil {
		lr, status, err := w.lease(ctx)
		switch {
		case err != nil:
			// Coordinator unreachable: back off with seeded jitter so a
			// fleet that lost its coordinator does not stampede back.
			fails++
			select {
			case <-ctx.Done():
			case <-time.After(w.backoff().Delay(fails, hashString(w.workerID()), uint64(slot))):
			}
			continue
		case status == http.StatusServiceUnavailable:
			return // draining: no more work will be leased
		case status == http.StatusForbidden:
			return // quarantined: this identity gets no more work
		case status == http.StatusNoContent:
			// Long poll elapsed with nothing eligible; poll again.
		default:
			w.executeGroup(ctx, runners, slot, w.gather(ctx, lr))
		}
		fails = 0
	}
}

// gather tops a freshly leased task up to the configured batch width with
// whatever the coordinator can hand over immediately — the extra leases
// use a minimal wait so an idle queue never delays the task in hand.
func (w *Worker) gather(ctx context.Context, first leaseResponse) []leaseResponse {
	group := []leaseResponse{first}
	for len(group) < w.batch() {
		var lr leaseResponse
		status, _, err := w.post(ctx, "/worker/lease", leaseRequest{WaitMS: 1, Worker: w.workerID()}, &lr)
		if err != nil || status != http.StatusOK {
			break
		}
		group = append(group, lr)
	}
	return group
}

// lease long-polls the coordinator for one task.
func (w *Worker) lease(ctx context.Context) (leaseResponse, int, error) {
	req := leaseRequest{Worker: w.workerID()}
	if w.Wait > 0 {
		req.WaitMS = w.Wait.Milliseconds()
	}
	var lr leaseResponse
	status, _, err := w.post(ctx, "/worker/lease", req, &lr)
	return lr, status, err
}

// executeGroup runs a group of leased tasks, all heartbeated for the
// duration: leases sharing the first task's campaign execute as one
// batch, the rest singly. Failures to execute become error completions
// (the coordinator owns retry policy); failures to report are abandoned
// — the lease expires and the task's next owner derives the identical
// result.
func (w *Worker) executeGroup(ctx context.Context, runners *workerRunners, slot int, group []leaseResponse) {
	for i := range group {
		defer w.heartbeat(ctx, group[i])()
	}
	head := group[0].CampaignID
	batch := group[:0:0]
	for _, lr := range group {
		if lr.CampaignID == head {
			batch = append(batch, lr)
		}
	}
	w.executeBatch(ctx, runners, slot, batch)
	for _, lr := range group {
		if lr.CampaignID != head {
			w.executeBatch(ctx, runners, slot, []leaseResponse{lr})
		}
	}
}

// executeBatch builds every leased layout of one campaign, primes the
// runner's batched replay when at least two built (a pure accelerator:
// a declined prime just measures sequentially, and a primed measurement
// is bit-identical to an unprimed one), then measures and completes each
// task individually — a failure costs only its own task.
func (w *Worker) executeBatch(ctx context.Context, runners *workerRunners, slot int, batch []leaseResponse) {
	runner, err := runners.get(batch[0].CampaignID, batch[0].Spec, batch[0].Scale)
	if err != nil {
		for _, lr := range batch {
			w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Error: err.Error()})
		}
		return
	}
	if len(batch[0].Genome) > 0 {
		w.executeGenomeBatch(ctx, runner, slot, batch)
		return
	}
	built := batch[:0:0]
	var idxs []int
	var exes []*toolchain.Executable
	for _, lr := range batch {
		var exe *toolchain.Executable
		err := core.Guard(func() error {
			var berr error
			exe, berr = runner.BuildLayout(lr.Layout)
			return berr
		})
		if err != nil {
			w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Error: fmt.Sprintf("build: %v", err)})
			continue
		}
		built = append(built, lr)
		idxs = append(idxs, lr.Layout)
		exes = append(exes, exe)
	}
	if len(built) >= 2 {
		// Diagnostic only: an un-primed slot replays each layout itself.
		_ = core.Guard(func() error { return runner.PrimeBatch(slot, idxs, exes) })
	}
	for j, lr := range built {
		var o core.Observation
		err := core.Guard(func() error {
			var merr error
			o, merr = runner.MeasureLayout(slot, lr.Layout, exes[j])
			return merr
		})
		if err != nil {
			w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Error: fmt.Sprintf("measure: %v", err)})
			continue
		}
		wire := w.stamp(o, runner)
		w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Observation: &wire})
	}
}

// executeGenomeBatch is executeBatch for search individuals: each lease
// carries its genome's canonical encoding instead of a layout index.
// The decoded genomes build, share one batched trace walk when at least
// two built, and measure through the same per-genome pipeline the
// coordinator's local pool uses — identical bytes either way.
func (w *Worker) executeGenomeBatch(ctx context.Context, runner *core.LayoutRunner, slot int, batch []leaseResponse) {
	built := batch[:0:0]
	var genomes []toolchain.Genome
	var exes []*toolchain.Executable
	for _, lr := range batch {
		g, err := toolchain.DecodeGenome(lr.Genome)
		if err != nil {
			w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Error: fmt.Sprintf("decode genome: %v", err)})
			continue
		}
		var exe *toolchain.Executable
		err = core.Guard(func() error {
			var berr error
			exe, berr = runner.BuildGenome(g)
			return berr
		})
		if err != nil {
			w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Error: fmt.Sprintf("build: %v", err)})
			continue
		}
		built = append(built, lr)
		genomes = append(genomes, g)
		exes = append(exes, exe)
	}
	if len(built) >= 2 {
		// Diagnostic only: an un-primed slot replays each genome itself.
		_ = core.Guard(func() error { return runner.PrimeGenomes(slot, genomes, exes) })
	}
	for j, lr := range built {
		var o core.Observation
		err := core.Guard(func() error {
			var merr error
			o, merr = runner.MeasureGenome(slot, genomes[j], exes[j])
			return merr
		})
		if err != nil {
			w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Error: fmt.Sprintf("measure: %v", err)})
			continue
		}
		wire := w.stamp(o, runner)
		w.complete(ctx, completeRequest{LeaseID: lr.LeaseID, Observation: &wire})
	}
}

// stamp attests an observation against the runner's toolchain identity
// and, in byzantine soaks, routes it through the configured liar.
func (w *Worker) stamp(o core.Observation, runner *core.LayoutRunner) core.ObsWire {
	wire := o.Wire()
	wire.Fingerprint = wire.Attest(runner.AttestationKey())
	if w.Tamper == nil {
		return wire
	}
	lied := w.Tamper.Corrupt(tamperResult(wire), func(r faultinject.WireResult) string {
		return tamperWire(r).Attest(runner.AttestationKey())
	})
	return tamperWire(lied)
}

// tamperResult and tamperWire convert between core's wire observation
// and faultinject's neutral image of it (faultinject cannot import
// core).
func tamperResult(w core.ObsWire) faultinject.WireResult {
	return faultinject.WireResult{
		LayoutSeed: w.LayoutSeed, HeapSeed: w.HeapSeed,
		Cycles: w.Cycles, Instructions: w.Instructions,
		Events: w.Events, Runs: w.Runs, Status: w.Status,
		Attempts: w.Attempts, Fingerprint: w.Fingerprint,
	}
}

func tamperWire(r faultinject.WireResult) core.ObsWire {
	return core.ObsWire{
		LayoutSeed: r.LayoutSeed, HeapSeed: r.HeapSeed,
		Cycles: r.Cycles, Instructions: r.Instructions,
		Events: r.Events, Runs: r.Runs, Status: r.Status,
		Attempts: r.Attempts, Fingerprint: r.Fingerprint,
	}
}

// complete reports one outcome, retrying transport failures and 429s
// under the worker's seeded backoff (honoring Retry-After, delta or
// HTTP-date, like the submit client). Terminal verdicts need no
// handling: a 410 (lease lost) means the result is discarded and the
// requeued task re-derives it elsewhere; a 422 (rejected) means the
// coordinator already released the task and retrying the same bytes
// cannot change its mind.
func (w *Worker) complete(ctx context.Context, req completeRequest) {
	seedA, seedB := hashString(w.workerID()), hashString(req.LeaseID)
	for attempt := 1; attempt <= 3; attempt++ {
		status, hdr, err := w.post(ctx, "/worker/complete", req, &ack{})
		if err == nil && status != http.StatusTooManyRequests {
			return
		}
		wait := w.backoff().Delay(attempt, seedA, seedB)
		if err == nil { // 429: the coordinator names its own delay
			wait = retryAfter(hdr.Get("Retry-After"), time.Now())
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// heartbeat keeps the lease alive at a third of the coordinator's lease
// duration while the seams run. A lost lease (410) just stops the beat;
// the completion discovers the loss.
func (w *Worker) heartbeat(ctx context.Context, lr leaseResponse) (stop func()) {
	every := time.Duration(lr.LeaseMS) * time.Millisecond / 3
	if every <= 0 {
		return func() {}
	}
	hbCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				status, _, err := w.post(hbCtx, "/worker/heartbeat", leaseRef{LeaseID: lr.LeaseID}, nil)
				if err == nil && status != http.StatusNoContent {
					return
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// post sends one protocol request and decodes a JSON response into out
// (when out is non-nil and the response has a body). The response
// headers come back so retry loops can honor Retry-After.
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, http.Header, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.http().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, resp.Header, fmt.Errorf("campaignd: worker: bad %s response: %w", path, err)
		}
	}
	return resp.StatusCode, resp.Header, nil
}

// workerRunners caches one LayoutRunner per campaign. The runner holds
// the campaign's shared work (trace interpretation, the one compile all
// layouts reorder), so reusing it across that campaign's tasks is what
// makes a worker's marginal task cost just Reorder+Link+measure. A
// small bound is plenty: a worker rarely interleaves more than a couple
// of campaigns, and an evicted runner is just recomputed.
type workerRunners struct {
	w *Worker

	mu      sync.Mutex
	runners map[string]*core.LayoutRunner
	order   []string // FIFO eviction order
}

// maxWorkerRunners bounds the cached runners per worker process.
const maxWorkerRunners = 4

func (rc *workerRunners) get(id string, spec JobSpec, scale experiments.Scale) (*core.LayoutRunner, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if r, ok := rc.runners[id]; ok {
		return r, nil
	}
	cfg, err := campaignConfig(spec, scale)
	if err != nil {
		return nil, err
	}
	cfg.LayoutCache = rc.w.Cache
	cfg.Faults = rc.w.Faults
	cfg.Obs = rc.w.Obs
	cfg.Delta = rc.w.Delta
	r, err := core.NewLayoutRunner(cfg, rc.w.parallel())
	if err != nil {
		return nil, err
	}
	if rc.runners == nil {
		rc.runners = make(map[string]*core.LayoutRunner)
	}
	for len(rc.order) >= maxWorkerRunners {
		delete(rc.runners, rc.order[0])
		rc.order = rc.order[1:]
	}
	rc.runners[id] = r
	rc.order = append(rc.order, id)
	return r, nil
}
