package campaignd_test

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"interferometry/internal/artifactcache"
	"interferometry/internal/campaignd"
)

// startWorkers launches n in-process remote workers against the
// coordinator and returns a cancel that stops them and waits. batch > 1
// lets each worker lease that many tasks per pull and batch their
// replays.
func startWorkers(t *testing.T, coordinator string, httpc *http.Client, n, batch int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &campaignd.Worker{
				Coordinator: coordinator,
				HTTP:        httpc,
				Batch:       batch,
				Wait:        100 * time.Millisecond,
			}
			w.Run(ctx)
		}()
	}
	stop = func() {
		cancel()
		wg.Wait()
	}
	t.Cleanup(stop)
	return stop
}

// runSharded runs one spec on a fresh pure coordinator with n remote
// workers (leasing batch tasks per pull) and returns the dataset CSV.
func runSharded(t *testing.T, spec campaignd.JobSpec, n, batch int) []byte {
	t.Helper()
	_, client := startService(t, campaignd.Config{NoLocalWorkers: true})
	startWorkers(t, client.Base, client.HTTP, n, batch)
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("sharded campaign (%d workers) ended %s: %s", n, st.State, st.Error)
	}
	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestShardedMatchesSingleProcess is the scale-out headline: the same
// spec run through one remote worker and through four produces the
// exact dataset bytes (provenance columns included) of a clean
// single-process run. Worker count, completion order and network
// scheduling must not move a byte.
func TestShardedMatchesSingleProcess(t *testing.T) {
	spec := testSpec(8)
	want := datasetCSV(t, cleanDataset(t, spec))

	if got := runSharded(t, spec, 1, 0); !bytes.Equal(got, want) {
		t.Errorf("1-worker sharded dataset differs from single-process run:\n--- sharded ---\n%s--- clean ---\n%s", got, want)
	}
	if got := runSharded(t, spec, 4, 0); !bytes.Equal(got, want) {
		t.Errorf("4-worker sharded dataset differs from single-process run:\n--- sharded ---\n%s--- clean ---\n%s", got, want)
	}
}

// TestShardedBatchedMatchesSingleProcess is the batched-replay variant
// of the scale-out headline: 2 workers each leasing up to 4 tasks per
// pull and sharing one trace walk per group must still produce the
// byte-exact dataset of a clean single-process run, whatever mix of
// batch widths the lease timing produces.
func TestShardedBatchedMatchesSingleProcess(t *testing.T) {
	spec := testSpec(10)
	want := datasetCSV(t, cleanDataset(t, spec))

	if got := runSharded(t, spec, 2, 4); !bytes.Equal(got, want) {
		t.Errorf("2-worker batched sharded dataset differs from single-process run:\n--- sharded ---\n%s--- clean ---\n%s", got, want)
	}
}

// blockingTransport passes requests through until it sees the first
// /worker/complete, which it stalls until the request context dies —
// pinning its worker in the "executed but never reported" state a
// crashed worker leaves behind.
type blockingTransport struct {
	base http.RoundTripper
	once sync.Once
	hit  chan struct{} // closed when the first complete is captured
}

func (bt *blockingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/worker/complete") {
		bt.once.Do(func() { close(bt.hit) })
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	return bt.base.RoundTrip(req)
}

// TestShardedWorkerDeathRecovers kills a worker that holds a leased,
// fully executed task whose result never reached the coordinator. The
// lease must expire, the task requeue onto the surviving worker, and
// the finished dataset still match the single-process bytes — a
// re-execution derives identical results, and a lease-expiry requeue
// costs no attempt, so even the provenance columns are unchanged.
func TestShardedWorkerDeathRecovers(t *testing.T) {
	spec := testSpec(6)
	want := datasetCSV(t, cleanDataset(t, spec))

	_, client := startService(t, campaignd.Config{
		NoLocalWorkers: true,
		Lease:          300 * time.Millisecond,
	})

	// The doomed worker goes first, alone, so it is guaranteed to hold
	// a task when it dies.
	bt := &blockingTransport{base: client.HTTP.Transport, hit: make(chan struct{})}
	doomedCtx, kill := context.WithCancel(context.Background())
	defer kill()
	var doomedDone sync.WaitGroup
	doomedDone.Add(1)
	go func() {
		defer doomedDone.Done()
		w := &campaignd.Worker{
			Coordinator: client.Base,
			HTTP:        &http.Client{Transport: bt},
			Wait:        100 * time.Millisecond,
		}
		w.Run(doomedCtx)
	}()

	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bt.hit: // doomed worker executed a task and is stuck reporting it
	case <-time.After(30 * time.Second):
		t.Fatal("doomed worker never executed a task")
	}
	kill()
	doomedDone.Wait()

	// The survivor finishes the campaign, including the dead worker's
	// requeued task.
	startWorkers(t, client.Base, client.HTTP, 1, 0)
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}
	if st.Failed != 0 {
		t.Errorf("worker death produced %d failed layouts; a reaped lease must cost nothing", st.Failed)
	}
	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("dataset after worker death differs from single-process run:\n--- sharded ---\n%s--- clean ---\n%s", got, want)
	}
}

// TestArtifactCacheResubmit proves the cache's reason to exist: a spec
// resubmitted to a restarted service (same cache directory) rebuilds
// nothing — every layout build is served from the cache — and the
// result bytes are identical to the cold run's.
func TestArtifactCacheResubmit(t *testing.T) {
	spec := testSpec(8)
	dir := t.TempDir()

	cold, err := artifactcache.Open(artifactcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1, client1 := startService(t, campaignd.Config{Workers: 2, LayoutCache: cold})
	ctx := context.Background()
	t0 := time.Now()
	st, err := client1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client1, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("cold campaign ended %s: %s", st.State, st.Error)
	}
	coldWall := time.Since(t0)
	ref, err := client1.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Drain()
	if s := cold.Stats(); s.Misses == 0 || s.Entries == 0 {
		t.Fatalf("cold run should populate the cache, got %+v", s)
	}

	// "Restart": a fresh cache handle over the same directory, a fresh
	// server with no memory of the campaign.
	warm, err := artifactcache.Open(artifactcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, client2 := startService(t, campaignd.Config{Workers: 2, LayoutCache: warm})
	t1 := time.Now()
	st2, err := client2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2 = waitDone(t, client2, st2.ID); st2.State != campaignd.StateDone {
		t.Fatalf("warm campaign ended %s: %s", st2.State, st2.Error)
	}
	warmWall := time.Since(t1)
	got, err := client2.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("cache-served campaign differs from cold run:\n--- warm ---\n%s--- cold ---\n%s", got, ref)
	}
	s := warm.Stats()
	if rate := s.HitRate(); rate < 0.9 {
		t.Errorf("warm run hit rate %.2f (hits=%d misses=%d); resubmission should serve >90%% from cache", rate, s.Hits, s.Misses)
	}
	t.Logf("cold %v, warm %v, warm hit rate %.2f (%d hits / %d misses)",
		coldWall, warmWall, s.HitRate(), s.Hits, s.Misses)
}
