package campaignd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/results"
)

// Handler returns the service's HTTP API:
//
//	POST /campaigns                  submit a JobSpec; 202 with its Status,
//	                                 429 + Retry-After when shed, 503 when draining
//	GET  /campaigns/{id}             campaign Status
//	GET  /campaigns/{id}/result      finished dataset as CSV (with provenance columns);
//	                                 202 + Retry-After while running
//	GET  /campaigns/{id}/measurements  measurement-only canonical CSV — byte-identical
//	                                 across faulted and clean runs of the same spec
//	GET  /healthz                    liveness (always 200 while the process serves)
//	GET  /readyz                     admission readiness (503 once draining)
//	GET  /queuez                     queue, lease and breaker introspection
//	GET  /metrics                    Prometheus metrics export
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /campaigns/{id}/measurements", s.handleMeasurements)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /queuez", s.handleQueuez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /worker/lease", s.handleLease)
	mux.HandleFunc("POST /worker/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /worker/complete", s.handleComplete)
	return mux
}

// writeJSON encodes v as the response body. Encode errors cannot be
// reported to the client (the status line is already on the wire), so
// they are counted instead of discarded — a climbing
// campaignd_http_write_errors_total points at dying connections or an
// unencodable response type.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.writeErrs.Inc()
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxSpecBytes caps a submitted spec body. Specs are a handful of scalar
// fields; anything beyond 1 MiB is a mistake or an attack, and without
// the cap the decoder would read an arbitrarily large body into memory
// before rejecting it.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	// A typo-keyed field ("layout" for "layouts") would otherwise be
	// dropped silently and the campaign would run with the default.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrOverloaded):
		// Backpressure: the client should retry once leased work has
		// completed or been reaped.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.RetryAfter())))
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case err != nil:
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusAccepted, st)
	}
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown campaign"})
		return
	}
	s.writeJSON(w, http.StatusOK, c.snapshot())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.serveCSV(w, r, results.WriteDatasetCSV)
}

func (s *Server) handleMeasurements(w http.ResponseWriter, r *http.Request) {
	s.serveCSV(w, r, results.WriteMeasurementsCSV)
}

func (s *Server) serveCSV(w http.ResponseWriter, r *http.Request, write func(io.Writer, *core.Dataset) error) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown campaign"})
		return
	}
	ds, err := c.dataset()
	switch {
	case errors.Is(err, errNotDone):
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusAccepted, c.snapshot())
		return
	case err != nil:
		s.writeJSON(w, http.StatusConflict, c.snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := write(w, ds); err != nil {
		// Headers are gone; all we can do is cut the stream short.
		return
	}
}

type queuezResponse struct {
	Depth        int    `json:"depth"`
	Leased       int    `json:"leased"`
	RemoteLeases int    `json:"remote_leases"`
	Capacity     int    `json:"capacity"`
	Campaigns    int    `json:"campaigns"`
	Draining     bool   `json:"draining"`
	Build        string `json:"breaker_build"`
	Measure      string `json:"breaker_measure"`
}

func (s *Server) handleQueuez(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.campaigns)
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, queuezResponse{
		Depth:        s.queue.Depth(),
		Leased:       s.queue.Leased(),
		RemoteLeases: s.remote.Len(),
		Capacity:     s.queue.Capacity(),
		Campaigns:    n,
		Draining:     s.Draining(),
		Build:        s.build.State().String(),
		Measure:      s.measure.State().String(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil || s.cfg.Obs.Metrics == nil {
		http.Error(w, "metrics not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.cfg.Obs.WriteMetricsPrometheus(w)
}
