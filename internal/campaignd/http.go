package campaignd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/jobqueue"
	"interferometry/internal/results"
)

// NewHTTPServer wraps a handler in an http.Server with the service's
// standard hardening: header-read and idle timeouts plus a header size
// bound, so a stuck or malicious client cannot pin connection state
// forever. Body timeouts stay unset on purpose — /worker/lease
// long-polls and CSV streams are legitimately slow; the lease handler
// bounds its own poll server-side.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// Handler returns the service's HTTP API:
//
//	POST /campaigns                  submit a JobSpec; 202 with its Status,
//	                                 429 + Retry-After when shed (capacity or
//	                                 tenant quota), 503 when draining. The
//	                                 X-Tenant header attributes the campaign
//	                                 (equivalent to the spec's tenant field;
//	                                 setting both to different values is a 400)
//	GET  /campaigns/{id}             campaign Status
//	GET  /campaigns/{id}/result      finished dataset as CSV (with provenance columns);
//	                                 202 + Retry-After while running. ?offset=O&limit=N
//	                                 streams one page of N rows starting at row O
//	                                 (header only at offset 0); X-Next-Offset names
//	                                 the next page while more rows remain, and the
//	                                 concatenated pages are byte-identical to the blob
//	GET  /campaigns/{id}/measurements  measurement-only canonical CSV — byte-identical
//	                                 across faulted and clean runs of the same spec;
//	                                 same offset/limit paging
//	GET  /campaigns/{id}/generations search campaign: settled generations as CSV,
//	                                 streamable while the search runs; ?canonical=1
//	                                 for the measurement-only export, offset/limit
//	                                 page in generation units
//	GET  /campaigns/{id}/report      search campaign: finished summary as canonical
//	                                 JSON; 202 + Retry-After while running
//	GET  /healthz                    liveness (always 200 while the process serves)
//	GET  /readyz                     admission readiness (503 once draining)
//	GET  /queuez                     queue, lease, breaker and per-tenant introspection
//	GET  /metrics                    Prometheus metrics export
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /campaigns/{id}/measurements", s.handleMeasurements)
	mux.HandleFunc("GET /campaigns/{id}/generations", s.handleGenerations)
	mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /queuez", s.handleQueuez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /worker/lease", s.handleLease)
	mux.HandleFunc("POST /worker/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /worker/complete", s.handleComplete)
	return mux
}

// writeJSON encodes v as the response body. Encode errors cannot be
// reported to the client (the status line is already on the wire), so
// they are counted instead of discarded — a climbing
// campaignd_http_write_errors_total points at dying connections or an
// unencodable response type.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.writeErrs.Inc()
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxSpecBytes caps a submitted spec body. Specs are a handful of scalar
// fields; anything beyond 1 MiB is a mistake or an attack, and without
// the cap the decoder would read an arbitrarily large body into memory
// before rejecting it.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	// A typo-keyed field ("layout" for "layouts") would otherwise be
	// dropped silently and the campaign would run with the default.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad spec: " + err.Error()})
		return
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		if spec.Tenant != "" && spec.Tenant != h {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("campaignd: X-Tenant %q conflicts with spec tenant %q", h, spec.Tenant)})
			return
		}
		spec.Tenant = h
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrTenantOverQuota):
		// Backpressure: the client should retry once leased work has
		// completed or been reaped.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.RetryAfter())))
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case err != nil:
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusAccepted, st)
	}
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown campaign"})
		return
	}
	s.writeJSON(w, http.StatusOK, c.snapshot())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.serveCSV(w, r, results.WriteDatasetCSVRange)
}

func (s *Server) handleMeasurements(w http.ResponseWriter, r *http.Request) {
	s.serveCSV(w, r, results.WriteMeasurementsCSVRange)
}

// csvPage parses the offset/limit paging parameters. limit <= 0 (or
// absent) means the whole dataset in one response.
func csvPage(r *http.Request) (offset, limit int, err error) {
	q := r.URL.Query()
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("bad offset %q", v)
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
	}
	return offset, limit, nil
}

// serveCSV streams a finished dataset, whole or one page at a time.
// Pages are keyed by row (= layout) index: the header is written only
// at offset 0 and X-Next-Offset names the next page while rows remain,
// so a client concatenating pages reproduces the blob byte for byte
// while the server never buffers more than one page.
func (s *Server) serveCSV(w http.ResponseWriter, r *http.Request, write func(io.Writer, *core.Dataset, int, int, bool) error) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown campaign"})
		return
	}
	offset, limit, perr := csvPage(r)
	if perr != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: perr.Error()})
		return
	}
	ds, err := c.dataset()
	switch {
	case errors.Is(err, errNotDone):
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusAccepted, c.snapshot())
		return
	case err != nil:
		s.writeJSON(w, http.StatusConflict, c.snapshot())
		return
	}
	rows := len(ds.Obs)
	n := rows - offset
	if limit > 0 && limit < n {
		n = limit
	}
	if n < 0 {
		n = 0
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Total-Rows", strconv.Itoa(rows))
	if limit > 0 && offset+n < rows {
		w.Header().Set("X-Next-Offset", strconv.Itoa(offset+n))
	}
	// The header rides only a page that carries row 0. An empty page —
	// offset at or past the final row — must stay byte-empty, or a
	// client polling past the end (tailing an incremental export)
	// would accumulate duplicate header rows.
	if err := write(w, ds, offset, n, offset == 0 && n > 0); err != nil {
		// Headers are gone; all we can do is cut the stream short.
		return
	}
}

// handleGenerations streams a search campaign's settled generations as
// CSV — available while the search still runs, because settled
// generations are immutable. ?canonical=1 drops the provenance columns
// (the measurement-only export is byte-identical across faulted and
// clean runs); ?offset=O&limit=N pages in generation units with the
// header only at offset 0, so concatenated pages reproduce the blob.
// X-Total-Rows counts generations settled so far; a client polls the
// campaign Status to learn when the trajectory is complete.
func (s *Server) handleGenerations(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown campaign"})
		return
	}
	offset, limit, perr := csvPage(r)
	if perr != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: perr.Error()})
		return
	}
	gens, isSearch := c.searchGenerations()
	if !isSearch {
		s.writeJSON(w, http.StatusConflict, errorResponse{
			Error: "campaignd: layout campaign has no generations; fetch its result"})
		return
	}
	provenance := r.URL.Query().Get("canonical") == ""
	total := len(gens)
	n := total - offset
	if limit > 0 && limit < n {
		n = limit
	}
	if n < 0 {
		n = 0
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Total-Rows", strconv.Itoa(total))
	if limit > 0 && offset+n < total {
		w.Header().Set("X-Next-Offset", strconv.Itoa(offset+n))
	}
	page := gens[min(offset, total):min(offset+n, total)]
	// Header only on a page carrying generation 0: a poll at or past the
	// settled frontier (the normal tailing pattern while the search
	// runs, including offset 0 before anything settles) must return a
	// byte-empty body so concatenated polls reproduce the blob exactly.
	if err := results.WriteGenerationsCSVRange(w, c.spec.Benchmark, page, offset == 0 && n > 0, provenance); err != nil {
		return // headers are gone; cut the stream short
	}
}

// handleReport serves a finished search campaign's summary (best layout,
// trajectory, hashes) as canonical JSON — the blob chaos runs compare
// byte for byte against the single-process reference. 202 with the
// Status while the search still runs.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown campaign"})
		return
	}
	res, err := c.searchResult()
	switch {
	case errors.Is(err, errNotDone):
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusAccepted, c.snapshot())
		return
	case err != nil:
		s.writeJSON(w, http.StatusConflict, c.snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := results.WriteJSON(w, results.SummarizeSearch(res)); err != nil {
		return
	}
}

// tenantz is one tenant's row in /queuez: queue occupancy from the
// scheduler plus the campaigns the tenant has in flight.
type tenantz struct {
	Queued    int `json:"queued"`
	Leased    int `json:"leased"`
	Quota     int `json:"quota,omitempty"`
	Campaigns int `json:"campaigns"`
}

type queuezResponse struct {
	Depth        int                              `json:"depth"`
	Leased       int                              `json:"leased"`
	RemoteLeases int                              `json:"remote_leases"`
	Capacity     int                              `json:"capacity"`
	Campaigns    int                              `json:"campaigns"`
	Draining     bool                             `json:"draining"`
	Build        string                           `json:"breaker_build"`
	Measure      string                           `json:"breaker_measure"`
	WALLive      int                              `json:"wal_live_campaigns,omitempty"`
	Tenants      map[string]tenantz               `json:"tenants,omitempty"`
	Workers      map[string]jobqueue.WorkerHealth `json:"workers,omitempty"`
}

func (s *Server) handleQueuez(w http.ResponseWriter, r *http.Request) {
	tenants := make(map[string]tenantz)
	for tenant, tc := range s.queue.Tenants() {
		tenants[tenant] = tenantz{Queued: tc.Queued, Leased: tc.Leased, Quota: tc.Quota}
	}
	s.mu.Lock()
	n := len(s.campaigns)
	for _, c := range s.campaigns {
		t := tenants[c.spec.Tenant]
		t.Campaigns++
		tenants[c.spec.Tenant] = t
	}
	s.mu.Unlock()
	resp := queuezResponse{
		Depth:        s.queue.Depth(),
		Leased:       s.queue.Leased(),
		RemoteLeases: s.remote.Len(),
		Capacity:     s.queue.Capacity(),
		Campaigns:    n,
		Draining:     s.Draining(),
		Build:        s.build.State().String(),
		Measure:      s.measure.State().String(),
		Tenants:      tenants,
	}
	if workers := s.remote.Workers(); len(workers) > 0 {
		resp.Workers = workers
	}
	if s.wal != nil {
		resp.WALLive = s.wal.Live()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil || s.cfg.Obs.Metrics == nil {
		http.Error(w, "metrics not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.cfg.Obs.WriteMetricsPrometheus(w)
}
