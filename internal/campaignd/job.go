package campaignd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
)

// JobSpec is the JSON body of a campaign submission. Everything that
// influences a measurement is in the spec, so a spec resubmitted to any
// campaignd (or run through core.RunCampaign directly) derives the same
// seed tuples and therefore the same dataset.
type JobSpec struct {
	// Benchmark names a progen suite program, e.g. "429.mcf".
	Benchmark string `json:"benchmark"`
	// Tenant attributes the campaign for quota accounting and fair
	// scheduling. Submissions may set it in the spec or the X-Tenant
	// header (they must agree). Empty is the anonymous tenant. Tenant is
	// part of the campaign identity: two tenants submitting the same
	// measurement spec get separate campaigns and checkpoints, so one
	// tenant can never read or extend another's work by guessing a spec.
	Tenant string `json:"tenant,omitempty"`
	// Layouts is the number of code reorderings to measure. Zero means
	// the server scale's default.
	Layouts int `json:"layouts,omitempty"`
	// BaseSeed roots every derived seed. Zero means the standard
	// campaign seed, matching cmd/interferometry -campaign.
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// Budget is the retired-instruction budget per run. Zero means the
	// server scale's default.
	Budget uint64 `json:"budget,omitempty"`
	// Priority orders jobs in the queue: lower runs sooner; equal
	// priorities run in submission order.
	Priority int `json:"priority,omitempty"`
	// FailureBudget is how many layouts may fail permanently before the
	// campaign is abandoned.
	FailureBudget int `json:"failure_budget,omitempty"`
	// DeadlineMS bounds the campaign's wall-clock time. The deadline
	// propagates as a context from admission to every task; once it
	// passes, remaining tasks are dropped and the campaign reports
	// failed. Zero means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Kind selects the campaign kind: "" or "campaign" measures Layouts
	// random layouts (the default); "search" runs a seeded evolutionary
	// search over the layout space, generation by generation, with the
	// shape in Search.
	Kind string `json:"kind,omitempty"`
	// Search shapes a layout-search campaign; only valid with Kind
	// "search". Nil uses the search defaults.
	Search *SearchSpec `json:"search,omitempty"`
}

// Campaign kinds.
const (
	KindCampaign = "campaign"
	KindSearch   = "search"
)

// SearchSpec is the JSON shape of a layout search: population size,
// generation count and the selection knobs. Zero fields take the core
// search defaults (16×8, elite 2, tournament 3).
type SearchSpec struct {
	Population  int `json:"population,omitempty"`
	Generations int `json:"generations,omitempty"`
	Elite       int `json:"elite,omitempty"`
	Tournament  int `json:"tournament,omitempty"`
}

// IsSearch reports whether the spec describes a layout-search campaign.
func (s JobSpec) IsSearch() bool { return s.Kind == KindSearch }

func (s JobSpec) validate() error {
	if s.Benchmark == "" {
		return fmt.Errorf("campaignd: spec needs a benchmark")
	}
	if _, ok := progen.ByName(s.Benchmark); !ok {
		return fmt.Errorf("campaignd: unknown benchmark %q", s.Benchmark)
	}
	if s.Layouts < 0 || s.DeadlineMS < 0 || s.FailureBudget < 0 {
		return fmt.Errorf("campaignd: negative spec field")
	}
	switch s.Kind {
	case "", KindCampaign:
		if s.Search != nil {
			return fmt.Errorf("campaignd: search parameters need kind %q", KindSearch)
		}
	case KindSearch:
		sp := s.searchSpec()
		if sp.Population < 0 || sp.Generations < 0 || sp.Elite < 0 || sp.Tournament < 0 {
			return fmt.Errorf("campaignd: negative search field")
		}
		cfg := s.searchShape()
		if elite, pop := cfg.Elite, cfg.Population; elite >= pop {
			return fmt.Errorf("campaignd: search elite %d must be smaller than population %d", elite, pop)
		}
	default:
		return fmt.Errorf("campaignd: unknown campaign kind %q", s.Kind)
	}
	return nil
}

// searchSpec returns the search shape, defaulting a nil Search.
func (s JobSpec) searchSpec() SearchSpec {
	if s.Search != nil {
		return *s.Search
	}
	return SearchSpec{}
}

// searchShape resolves the search defaults the way core does, so the
// campaign identity hashes effective values, not spellings of them.
func (s JobSpec) searchShape() core.SearchConfig {
	sp := s.searchSpec()
	cfg := core.SearchConfig{
		Population:  sp.Population,
		Generations: sp.Generations,
		Elite:       sp.Elite,
		TournamentK: sp.Tournament,
	}
	return cfg.Resolved()
}

// ID is the campaign's deterministic identity: a hash of every
// measurement-relevant spec field. Identical submissions collapse onto
// one campaign (and one checkpoint directory), which is what makes
// resubmit-after-crash a resume instead of a duplicate.
func (s JobSpec) ID(scale experiments.Scale) string {
	key := fmt.Sprintf("%s|%d|%d|%d|%s|%s",
		s.Benchmark, s.effectiveLayouts(scale), s.effectiveSeed(), s.effectiveBudget(scale), scale.Name, s.Tenant)
	if s.IsSearch() {
		// Search campaigns extend the key; layout campaign IDs are
		// untouched, so existing checkpoints and WALs stay addressable.
		shape := s.searchShape()
		key += fmt.Sprintf("|search|%d|%d|%d|%d",
			shape.Population, shape.Generations, shape.Elite, shape.TournamentK)
	}
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:6])
}

func (s JobSpec) effectiveLayouts(scale experiments.Scale) int {
	if s.Layouts > 0 {
		return s.Layouts
	}
	return scale.Layouts
}

func (s JobSpec) effectiveSeed() uint64 {
	if s.BaseSeed != 0 {
		return s.BaseSeed
	}
	return defaultBaseSeed
}

func (s JobSpec) effectiveBudget(scale experiments.Scale) uint64 {
	if s.Budget > 0 {
		return s.Budget
	}
	return scale.Budget
}

// defaultBaseSeed matches cmd/interferometry's -campaign mode, so a job
// submitted with no seed reproduces the CLI's standalone campaigns.
const defaultBaseSeed = 0x1f2e3d4c

// campaignConfig translates a spec into the core campaign config —
// the single place service and soak harness agree on what a spec means.
func campaignConfig(spec JobSpec, scale experiments.Scale) (core.CampaignConfig, error) {
	ps, ok := progen.ByName(spec.Benchmark)
	if !ok {
		return core.CampaignConfig{}, fmt.Errorf("campaignd: unknown benchmark %q", spec.Benchmark)
	}
	prog, err := progen.Generate(ps)
	if err != nil {
		return core.CampaignConfig{}, err
	}
	return core.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    spec.effectiveBudget(scale),
		Layouts:   spec.effectiveLayouts(scale),
		Fidelity:  scale.Fidelity,
		BaseSeed:  spec.effectiveSeed(),
	}, nil
}

// searchConfig translates a search spec into the core search config —
// the single definition the service, the remote workers and the soak
// harness share of what a search spec means.
func searchConfig(spec JobSpec, scale experiments.Scale) (core.SearchConfig, error) {
	campaign, err := campaignConfig(spec, scale)
	if err != nil {
		return core.SearchConfig{}, err
	}
	cfg := spec.searchShape()
	cfg.Campaign = campaign
	return cfg, nil
}

// Campaign states.
const (
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted" // drained mid-flight; resubmit to resume
)

// campaign is one admitted job and its accumulating results.
type campaign struct {
	id        string
	spec      JobSpec
	runner    *core.LayoutRunner
	sink      *core.CheckpointSink
	ctx       context.Context
	cancel    context.CancelCauseFunc
	stopTimer context.CancelFunc // releases the deadline timer, if any
	created   time.Time

	// Journal hooks, wired by the server at admission when a WAL is
	// open (nil otherwise). onTask records one layout reaching a
	// terminal state, onFinal the campaign finishing; both are invoked
	// with c.mu held, before tasks can observe the new state.
	onTask  func(layout int, state string)
	onFinal func(state string)

	// search carries the generational state of a layout-search
	// campaign (nil for layout campaigns). Its fields are guarded by
	// c.mu like the layout state below.
	search *searchRun

	mu        sync.Mutex
	state     string
	obs       []core.Observation
	done      map[int]bool
	attempts  map[int]int // failed executions per layout (or per individual of the in-flight generation)
	failures  []core.LayoutFailure
	restored  int
	completed int
	failed    int
	remaining int
	ds        *core.Dataset
	err       error
	finished  chan struct{}
}

// newCampaign admits a spec: derives the campaign config, prepares the
// runner's shared state, and opens (or resumes) the checkpoint. The
// returned pending slice lists the layout indices still to measure.
func newCampaign(parent context.Context, spec JobSpec, scale experiments.Scale, workers int, checkpointRoot string, cache toolchain.LayoutCache, faults *faultinject.Injector, now time.Time) (*campaign, []int, error) {
	if spec.IsSearch() {
		c, err := newSearchCampaign(parent, spec, scale, workers, checkpointRoot, cache, faults, now)
		return c, nil, err
	}
	cfg, err := campaignConfig(spec, scale)
	if err != nil {
		return nil, nil, err
	}
	cfg.LayoutCache = cache
	cfg.Faults = faults
	id := spec.ID(scale)

	var sink *core.CheckpointSink
	restored := map[int]core.Observation{}
	if checkpointRoot != "" {
		dir := filepath.Join(checkpointRoot, id)
		ccfg := cfg
		ccfg.Checkpoint = core.CheckpointConfig{Dir: dir}
		if _, statErr := os.Stat(filepath.Join(dir, "observations.jsonl")); statErr == nil {
			ccfg.Checkpoint.Resume = true
		}
		sink, err = core.OpenCheckpointSink(ccfg)
		if err != nil {
			return nil, nil, fmt.Errorf("campaignd: checkpoint for %s: %w", id, err)
		}
		restored = sink.Restored()
	}

	ctx, cancel := context.WithCancelCause(parent)
	stopTimer := context.CancelFunc(func() {})
	if spec.DeadlineMS > 0 {
		ctx, stopTimer = context.WithDeadline(ctx, now.Add(time.Duration(spec.DeadlineMS)*time.Millisecond))
	}
	runner, err := core.NewLayoutRunner(cfg, workers)
	if err != nil {
		cancel(err)
		stopTimer()
		return nil, nil, err
	}

	c := &campaign{
		id:        id,
		spec:      spec,
		runner:    runner,
		sink:      sink,
		ctx:       ctx,
		cancel:    cancel,
		stopTimer: stopTimer,
		created:   now,
		state:     StateRunning,
		obs:       make([]core.Observation, cfg.Layouts),
		done:      make(map[int]bool, cfg.Layouts),
		attempts:  make(map[int]int),
		restored:  len(restored),
		completed: len(restored),
		remaining: cfg.Layouts,
		finished:  make(chan struct{}),
	}
	var pending []int
	for i := 0; i < cfg.Layouts; i++ {
		if o, ok := restored[i]; ok {
			c.obs[i] = o
			c.done[i] = true
			c.remaining--
			continue
		}
		pending = append(pending, i)
	}
	if c.remaining == 0 {
		c.mu.Lock()
		c.finalizeLocked()
		c.mu.Unlock()
	}
	return c, pending, nil
}

// complete records one successful observation. Idempotent: duplicate
// executions (an expired lease redone elsewhere) are byte-identical by
// determinism, and only the first recording counts.
func (c *campaign) complete(i int, o core.Observation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning || c.done[i] {
		return
	}
	c.done[i] = true
	c.obs[i] = o
	c.completed++
	c.remaining--
	if c.sink != nil {
		c.sink.Put(i, o)
	}
	if c.onTask != nil {
		c.onTask(i, "completed")
	}
	if c.remaining == 0 {
		c.finalizeLocked()
	}
}

// recordFailure counts one failed execution of layout i and reports the
// total so far. Breaker denials never reach here: they requeue without
// executing, so they cost no attempt.
func (c *campaign) recordFailure(i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts[i]++
	return c.attempts[i]
}

func (c *campaign) attemptsOf(i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts[i]
}

// failLayout records a permanent per-layout failure after exhausted
// attempts. The campaign survives while failures stay within the spec's
// budget; one more abandons it.
func (c *campaign) failLayout(i, attempts int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning || c.done[i] {
		return
	}
	c.done[i] = true
	c.obs[i] = c.runner.FailedObservation(i, attempts)
	c.failures = append(c.failures, core.LayoutFailure{
		Index: i, LayoutSeed: c.obs[i].LayoutSeed, Err: err.Error(),
	})
	c.failed++
	c.remaining--
	if c.onTask != nil {
		c.onTask(i, "failed")
	}
	if c.failed > c.spec.FailureBudget {
		c.failLocked(fmt.Errorf("campaignd: layout %d failed after %d attempts (budget %d): %w",
			i, attempts, c.spec.FailureBudget, err))
		return
	}
	if c.remaining == 0 {
		c.finalizeLocked()
	}
}

// abort fails the whole campaign (deadline exceeded, drain, operator
// cancel). Remaining queued tasks see the canceled context and drop.
func (c *campaign) abort(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return
	}
	c.failLocked(err)
}

// interrupt marks a draining campaign: completed observations are
// flushed to the checkpoint and the rest resumes on resubmission.
func (c *campaign) interrupt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return
	}
	c.state = StateInterrupted
	c.err = fmt.Errorf("campaignd: drained with %d layouts unmeasured; resubmit to resume", c.remaining)
	c.closeLocked()
}

func (c *campaign) failLocked(err error) {
	c.state = StateFailed
	c.err = err
	c.closeLocked()
	if c.onFinal != nil {
		c.onFinal(c.state)
	}
}

func (c *campaign) finalizeLocked() {
	ds, err := c.runner.Dataset(c.obs, c.failures)
	if err != nil {
		c.failLocked(err)
		return
	}
	c.ds = ds
	c.state = StateDone
	// closeLocked can degrade done to failed on a checkpoint flush
	// error, so the journal records the state that survives it.
	c.closeLocked()
	if c.onFinal != nil {
		c.onFinal(c.state)
	}
}

// closeLocked flushes the checkpoint, cancels the task context and
// releases waiters. Sink write errors degrade a done campaign to failed
// — a checkpoint that lies is worse than none.
func (c *campaign) closeLocked() {
	if c.sink != nil {
		if err := c.sink.Close(); err != nil && c.state == StateDone {
			c.state = StateFailed
			c.err = fmt.Errorf("campaignd: checkpoint flush: %w", err)
		}
		c.sink = nil
	}
	c.cancel(c.err)
	c.stopTimer()
	close(c.finished)
}

// snapshot returns the campaign's externally visible status.
func (c *campaign) snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:        c.id,
		Benchmark: c.spec.Benchmark,
		Tenant:    c.spec.Tenant,
		State:     c.state,
		Layouts:   len(c.obs),
		Completed: c.completed,
		Failed:    c.failed,
		Restored:  c.restored,
	}
	if c.err != nil {
		st.Error = c.err.Error()
	}
	if c.search != nil {
		c.search.snapshotLocked(&st)
	}
	return st
}

// dataset returns the final dataset once the campaign is done.
func (c *campaign) dataset() (*core.Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.search != nil {
		return nil, errIsSearch
	}
	switch c.state {
	case StateDone:
		return c.ds, nil
	case StateRunning:
		return nil, errNotDone
	default:
		return nil, c.err
	}
}

var (
	errNotDone  = fmt.Errorf("campaignd: campaign still running")
	errIsSearch = fmt.Errorf("campaignd: search campaign has no layout dataset; fetch its generations")
)

// Status is the JSON shape of a campaign's state. For a search
// campaign, Layouts is the per-generation population, Completed counts
// measured individuals across settled generations, and the search
// fields report the trajectory so far.
type Status struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	Tenant    string `json:"tenant,omitempty"`
	State     string `json:"state"`
	Layouts   int    `json:"layouts"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Restored  int    `json:"restored,omitempty"`
	Error     string `json:"error,omitempty"`

	// Search-campaign fields.
	Kind           string  `json:"kind,omitempty"`
	Generation     int     `json:"generation,omitempty"`  // settled generations so far
	Generations    int     `json:"generations,omitempty"` // configured total
	BestCPI        float64 `json:"best_cpi,omitempty"`
	TrajectoryHash string  `json:"trajectory_hash,omitempty"`
}
