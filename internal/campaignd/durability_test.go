package campaignd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"interferometry/internal/campaignd"
	"interferometry/internal/results"
)

// TestKillRestartResumesFromWAL is the durability acceptance test: a
// coordinator hard-killed (no drain, no flush) after acknowledging a
// campaign must, on restart against the same WAL dir, resume that
// campaign on its own and finish it byte-identical to a clean run —
// and once the campaign has finalized, a further restart must NOT
// resurrect it, but a resubmission restores it wholesale from its
// checkpoint.
func TestKillRestartResumesFromWAL(t *testing.T) {
	spec := testSpec(6)
	var want bytes.Buffer
	if err := results.WriteMeasurementsCSV(&want, cleanDataset(t, spec)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := campaignd.Config{
		Workers:        2,
		WALDir:         dir,
		CheckpointRoot: filepath.Join(dir, "checkpoints"),
	}

	// Phase 1: admit durably, then die. The workers are never started,
	// so the kill is guaranteed to land mid-campaign with zero progress.
	srv1, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != campaignd.StateRunning {
		t.Fatalf("fresh campaign state %s, want %s", st.State, campaignd.StateRunning)
	}
	srv1.Kill()

	// Phase 2: a restart on the same WAL dir must already know the
	// campaign — no resubmission — and run it to the clean bytes.
	srv2, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	hs2 := httptest.NewServer(srv2.Handler())
	client2 := &campaignd.Client{Base: hs2.URL, HTTP: hs2.Client()}
	ctx := context.Background()
	if _, err := client2.Status(ctx, st.ID); err != nil {
		t.Fatalf("restarted coordinator does not know campaign %s: %v", st.ID, err)
	}
	if done := waitDone(t, client2, st.ID); done.State != campaignd.StateDone {
		t.Fatalf("resumed campaign ended %s: %s", done.State, done.Error)
	}
	blob, err := client2.Measurements(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want.Bytes()) {
		t.Errorf("resumed measurements differ from clean run (%d vs %d bytes)", len(blob), want.Len())
	}
	var stream bytes.Buffer
	if err := client2.StreamMeasurements(ctx, st.ID, 2, &stream); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), blob) {
		t.Errorf("streamed pages differ from the blob (%d vs %d bytes)", stream.Len(), len(blob))
	}
	srv2.Kill() // the final was journaled before this kill
	hs2.Close()

	// Phase 3: the campaign finalized in the WAL, so the third
	// coordinator must not resume it; resubmitting restores it from the
	// checkpoint without re-running a single layout.
	srv3, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv3.Start()
	hs3 := httptest.NewServer(srv3.Handler())
	t.Cleanup(func() {
		srv3.Drain()
		hs3.Close()
	})
	client3 := &campaignd.Client{Base: hs3.URL, HTTP: hs3.Client()}
	if _, err := client3.Status(ctx, st.ID); err == nil {
		t.Fatalf("finalized campaign %s was resurrected after restart", st.ID)
	}
	st3, err := client3.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID != st.ID {
		t.Errorf("resubmission created campaign %s, want %s", st3.ID, st.ID)
	}
	if st3.State != campaignd.StateDone || st3.Restored != spec.Layouts {
		t.Errorf("resubmission state %s with %d restored, want %s with all %d from checkpoint",
			st3.State, st3.Restored, campaignd.StateDone, spec.Layouts)
	}
	meas3, err := client3.Measurements(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meas3, want.Bytes()) {
		t.Errorf("checkpoint-restored measurements differ from clean run")
	}
}

// TestTenantQuotaShedsWithRetryAfterOverHTTP pins the two-tenant
// admission contract: a flood tenant over its task quota is shed with
// 429 + Retry-After, while another tenant's submissions still admit —
// saturation is per tenant, not global. Tenancy is also identity: the
// same spec shape under two tenants is two campaigns.
func TestTenantQuotaShedsWithRetryAfterOverHTTP(t *testing.T) {
	// No local workers: queued tasks stay queued, so occupancy is exact.
	_, client := startService(t, campaignd.Config{
		Workers:            0,
		NoLocalWorkers:     true,
		QueueCapacity:      64,
		MaxQueuedPerTenant: 4,
	})
	ctx := context.Background()

	flood := testSpec(6)
	flood.Tenant = "flood"
	var re *campaignd.RetryError
	if _, err := client.Submit(ctx, flood); !errors.As(err, &re) {
		t.Fatalf("6-task submit under a 4-task quota returned %v, want 429 RetryError", err)
	} else if re.After <= 0 {
		t.Fatalf("shed submission carried no Retry-After hint")
	}

	flood.Layouts = 4
	fst, err := client.Submit(ctx, flood)
	if err != nil {
		t.Fatalf("in-quota flood submit: %v", err)
	}

	flood2 := testSpec(2)
	flood2.Tenant = "flood"
	if _, err := client.Submit(ctx, flood2); !errors.As(err, &re) {
		t.Fatalf("submit past a saturated tenant quota returned %v, want 429 RetryError", err)
	}

	// The flood tenant sitting at its quota must not starve anyone else.
	probe := testSpec(4)
	probe.Tenant = "probe"
	pst, err := client.Submit(ctx, probe)
	if err != nil {
		t.Fatalf("probe tenant shed by flood tenant's saturation: %v", err)
	}
	if pst.ID == fst.ID {
		t.Errorf("identical specs under different tenants shared campaign %s", pst.ID)
	}
	if pst.Tenant != "probe" {
		t.Errorf("campaign attributed to %q, want probe", pst.Tenant)
	}

	// /queuez exposes each tenant's occupancy against its quota.
	res, err := http.Get(client.Base + "/queuez")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var qz struct {
		Tenants map[string]struct {
			Queued int `json:"queued"`
			Quota  int `json:"quota"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(res.Body).Decode(&qz); err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"flood", "probe"} {
		tz, ok := qz.Tenants[tenant]
		if !ok || tz.Queued != 4 || tz.Quota != 4 {
			t.Errorf("/queuez tenants[%s] = %+v (present %v), want queued 4 of quota 4", tenant, tz, ok)
		}
	}
}

// TestTenantHeaderAttributesAndConflicts covers the X-Tenant header: it
// attributes a headerless spec, and a conflicting spec tenant is a 400.
func TestTenantHeaderAttributesAndConflicts(t *testing.T) {
	_, client := startService(t, campaignd.Config{Workers: 0, NoLocalWorkers: true})

	post := func(spec campaignd.JobSpec, tenant string) *http.Response {
		t.Helper()
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, client.Base+"/campaigns", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := post(testSpec(3), "acme")
	defer res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("header-attributed submit returned %s, want 202", res.Status)
	}
	var st campaignd.Status
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme" {
		t.Errorf("X-Tenant header attributed campaign to %q, want acme", st.Tenant)
	}

	conflicted := testSpec(3)
	conflicted.Tenant = "zeta"
	res2 := post(conflicted, "acme")
	defer res2.Body.Close()
	if res2.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting X-Tenant and spec tenant returned %s, want 400", res2.Status)
	}
}

// TestTenantCampaignCapSheds pins MaxCampaignsPerTenant: a tenant at
// its running-campaign cap is shed on NEW campaigns, but resubmitting a
// running spec returns its live status (never a quota error, never a
// duplicate), and other tenants are unaffected.
func TestTenantCampaignCapSheds(t *testing.T) {
	_, client := startService(t, campaignd.Config{
		Workers:               0,
		NoLocalWorkers:        true,
		MaxCampaignsPerTenant: 1,
	})
	ctx := context.Background()

	a := testSpec(2)
	a.Tenant = "acme"
	ast, err := client.Submit(ctx, a)
	if err != nil {
		t.Fatal(err)
	}

	b := testSpec(3)
	b.Tenant = "acme"
	var re *campaignd.RetryError
	if _, err := client.Submit(ctx, b); !errors.As(err, &re) {
		t.Fatalf("second campaign under a 1-campaign cap returned %v, want 429 RetryError", err)
	}

	// The running campaign itself stays reachable through resubmission.
	again, err := client.Submit(ctx, a)
	if err != nil {
		t.Fatalf("resubmitting the running campaign: %v", err)
	}
	if again.ID != ast.ID || again.State != campaignd.StateRunning {
		t.Errorf("resubmission returned %s (%s), want live status of %s", again.ID, again.State, ast.ID)
	}

	z := testSpec(3)
	z.Tenant = "zeta"
	if _, err := client.Submit(ctx, z); err != nil {
		t.Errorf("zeta shed by acme's campaign cap: %v", err)
	}
}

// TestStreamedPagesConcatenateToBlob: paging a finished dataset by any
// page size reproduces the one-shot blob byte for byte, for both the
// provenance dataset and the canonical measurements, and the paging
// headers describe the pages correctly.
func TestStreamedPagesConcatenateToBlob(t *testing.T) {
	spec := testSpec(5)
	_, client := startService(t, campaignd.Config{Workers: 2})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}

	blob, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, pageSize := range []int{1, 2, 7} {
		var stream bytes.Buffer
		if err := client.StreamResult(ctx, st.ID, pageSize, &stream); err != nil {
			t.Fatalf("pageSize %d: %v", pageSize, err)
		}
		if !bytes.Equal(stream.Bytes(), blob) {
			t.Errorf("pageSize %d: streamed result differs from blob (%d vs %d bytes)", pageSize, stream.Len(), len(blob))
		}
	}

	meas, err := client.Measurements(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var mstream bytes.Buffer
	if err := client.StreamMeasurements(ctx, st.ID, 2, &mstream); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mstream.Bytes(), meas) {
		t.Errorf("streamed measurements differ from blob (%d vs %d bytes)", mstream.Len(), len(meas))
	}

	// A mid-stream page: headerless rows, total advertised, next page named.
	res, err := http.Get(client.Base + "/campaigns/" + st.ID + "/result?offset=2&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if got := res.Header.Get("X-Total-Rows"); got != "5" {
		t.Errorf("X-Total-Rows = %q, want 5", got)
	}
	if got := res.Header.Get("X-Next-Offset"); got != "4" {
		t.Errorf("X-Next-Offset = %q, want 4", got)
	}
	var page bytes.Buffer
	if _, err := page.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, page.Bytes()) {
		t.Errorf("mid-stream page is not a contiguous slice of the blob")
	}
	if bytes.HasPrefix(page.Bytes(), blob[:bytes.IndexByte(blob, '\n')+1]) {
		t.Errorf("mid-stream page repeated the CSV header")
	}

	// The final page must not advertise a successor.
	res2, err := http.Get(client.Base + "/campaigns/" + st.ID + "/result?offset=4&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if got := res2.Header.Get("X-Next-Offset"); got != "" {
		t.Errorf("final page advertised X-Next-Offset %q", got)
	}
}

// TestConcurrentDuplicateSubmissionsAdmitOnce: racing submissions of
// the identical spec (WAL on, so each admission would journal) must
// converge on ONE campaign — the admitting reservation holds duplicates
// until the winner owns the ID.
func TestConcurrentDuplicateSubmissionsAdmitOnce(t *testing.T) {
	dir := t.TempDir()
	srv, client := startService(t, campaignd.Config{
		Workers:        2,
		WALDir:         dir,
		CheckpointRoot: filepath.Join(dir, "checkpoints"),
	})
	spec := testSpec(4)

	const racers = 8
	ids := make([]string, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := srv.Submit(spec)
			ids[i], errs[i] = st.ID, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("racer %d admitted campaign %s, racer 0 got %s", i, ids[i], ids[0])
		}
	}
	if st := waitDone(t, client, ids[0]); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}

	res, err := http.Get(client.Base + "/queuez")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var qz struct {
		Campaigns int `json:"campaigns"`
	}
	if err := json.NewDecoder(res.Body).Decode(&qz); err != nil {
		t.Fatal(err)
	}
	if qz.Campaigns != 1 {
		t.Errorf("%d campaigns exist after %d racing duplicate submissions, want 1", qz.Campaigns, racers)
	}
}
