package campaignd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/jobqueue"
	"interferometry/internal/toolchain"
)

// Coordinator/worker protocol (DESIGN.md §10). Remote campaignd worker
// processes pull leased layout tasks from these endpoints, execute them
// through their own core.LayoutRunner, and stream the observation back.
// The coordinator stays the single authority over lease lifetime,
// attempt counting and result merging: a worker only ever reports what
// one execution produced, and every merge goes through the same
// campaign.complete / taskFailed paths the local worker pool uses —
// which is what keeps the finished dataset byte-identical whatever the
// worker count, completion order or mid-campaign worker deaths.
//
// The per-seam circuit breakers intentionally guard only the local
// pool's seams: a remote worker's failures are isolated to its process,
// and tripping shared breakers on one bad worker would starve the rest.

// Long-poll bounds for /worker/lease.
const (
	defaultLeaseWait = 5 * time.Second
	maxLeaseWait     = 60 * time.Second
)

// leaseRequest is the body of POST /worker/lease.
type leaseRequest struct {
	// WaitMS bounds the long poll; zero means 5s, capped at 60s.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// leaseResponse hands one leased layout task to a worker. Spec and
// Scale carry everything the worker needs to derive the campaign config
// locally — the seed tuple discipline guarantees its runner is
// equivalent to the coordinator's.
type leaseResponse struct {
	LeaseID    string            `json:"lease_id"`
	CampaignID string            `json:"campaign_id"`
	Layout     int               `json:"layout"`
	Attempt    int               `json:"attempt"`
	Spec       JobSpec           `json:"spec"`
	Scale      experiments.Scale `json:"scale"`
	// Generation and Genome carry a search individual: the genome's
	// canonical binary encoding (base64 over the wire), which the
	// worker decodes through the validating codec and executes in place
	// of a layout index. Layout is then the index within the
	// generation, used only for reporting.
	Generation int    `json:"generation,omitempty"`
	Genome     []byte `json:"genome,omitempty"`
	// LeaseMS is the coordinator's lease duration; workers heartbeat at
	// a third of it.
	LeaseMS int64 `json:"lease_ms"`
}

// leaseRef names a lease in heartbeat requests.
type leaseRef struct {
	LeaseID string `json:"lease_id"`
}

// completeRequest reports one finished execution: an observation on
// success, an error string on failure. Exactly one should be set.
type completeRequest struct {
	LeaseID     string        `json:"lease_id"`
	Observation *core.ObsWire `json:"observation,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// ack is the empty-but-valid JSON body of settled protocol calls.
type ack struct {
	OK bool `json:"ok"`
}

// decodeBody decodes a small protocol body strictly. An empty body
// decodes to the zero value, so lease requests can omit the JSON.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// handleLease long-polls the queue for a task, drains tasks of dead
// campaigns in place (exactly like the local worker loop), and hands
// the first live one to the caller under a registered lease ID.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad lease request: " + err.Error()})
		return
	}
	wait := defaultLeaseWait
	if req.WaitMS > 0 {
		wait = time.Duration(req.WaitMS) * time.Millisecond
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	// Dead workers leave registry entries behind; sweeping on the lease
	// path bounds them without a background goroutine.
	s.remote.Sweep()
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	for {
		lease, err := s.queue.Pop(ctx)
		if errors.Is(err, jobqueue.ErrClosed) {
			s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ErrDraining.Error()})
			return
		}
		if err != nil { // long poll elapsed (or caller went away)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := lease.Payload()
		c := t.camp
		if cerr := c.ctx.Err(); cerr != nil {
			c.abort(context.Cause(c.ctx))
			lease.Complete()
			continue
		}
		resp := leaseResponse{
			LeaseID:    s.remote.Register(lease),
			CampaignID: c.id,
			Layout:     t.layout,
			Attempt:    lease.Attempt(),
			Spec:       c.spec,
			Scale:      s.cfg.scale(),
			LeaseMS:    s.cfg.lease().Milliseconds(),
		}
		if t.genome != nil {
			resp.Generation = t.gen
			resp.Genome = toolchain.EncodeGenome(*t.genome)
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
}

// handleHeartbeat extends a remote lease; 410 tells the worker its task
// has been requeued and it must abandon the execution.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req leaseRef
	if err := decodeBody(w, r, &req); err != nil || req.LeaseID == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad heartbeat request"})
		return
	}
	if err := s.remote.Heartbeat(req.LeaseID); err != nil {
		s.writeJSON(w, http.StatusGone, errorResponse{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleComplete settles a remote execution through the same paths the
// local pool uses. Duplicate or late completions (expired lease) return
// 410 and the result is discarded — by determinism the task's next
// owner derives identical bytes, so nothing is lost.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := decodeBody(w, r, &req); err != nil || req.LeaseID == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad complete request"})
		return
	}
	lease, ok := s.remote.Take(req.LeaseID)
	if !ok {
		s.writeJSON(w, http.StatusGone, errorResponse{Error: jobqueue.ErrLeaseLost.Error()})
		return
	}
	t := lease.Payload()
	c := t.camp
	if cerr := c.ctx.Err(); cerr != nil {
		c.abort(context.Cause(c.ctx))
		lease.Complete()
		s.writeJSON(w, http.StatusOK, ack{OK: true})
		return
	}
	switch {
	case req.Error != "":
		s.taskFailed(lease, c, t, errors.New(req.Error))
	case req.Observation == nil:
		s.taskFailed(lease, c, t, errors.New("worker reported neither observation nor error"))
	case t.genome != nil:
		// Search individual: the streamed observation must carry the
		// genome's fingerprint as its layout seed, or it was derived
		// from the wrong genome.
		o := req.Observation.Observation()
		if want := t.genome.Fingerprint(); o.LayoutSeed != want {
			s.taskFailed(lease, c, t, fmt.Errorf("worker observation has layout seed %#x, genome fingerprint is %#x", o.LayoutSeed, want))
		} else {
			c.completeSearch(t, core.CompletedObservation(o, c.attemptsOf(t.layout)+1))
			lease.Complete()
		}
	default:
		o := req.Observation.Observation()
		if want := c.runner.LayoutSeed(t.layout); o.LayoutSeed != want {
			// A result for the wrong layout (worker bug) must not merge;
			// it costs the attempt it claimed to be.
			s.taskFailed(lease, c, t, fmt.Errorf("worker observation has layout seed %#x, layout %d derives %#x", o.LayoutSeed, t.layout, want))
		} else {
			c.complete(t.layout, core.CompletedObservation(o, c.attemptsOf(t.layout)+1))
			lease.Complete()
		}
	}
	s.writeJSON(w, http.StatusOK, ack{OK: true})
}
