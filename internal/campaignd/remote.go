package campaignd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/jobqueue"
	"interferometry/internal/toolchain"
	"interferometry/internal/xrand"
)

// Coordinator/worker protocol (DESIGN.md §10). Remote campaignd worker
// processes pull leased layout tasks from these endpoints, execute them
// through their own core.LayoutRunner, and stream the observation back.
// The coordinator stays the single authority over lease lifetime,
// attempt counting and result merging: a worker only ever reports what
// one execution produced, and every merge goes through the same
// campaign.complete / taskFailed paths the local worker pool uses —
// which is what keeps the finished dataset byte-identical whatever the
// worker count, completion order or mid-campaign worker deaths.
//
// The per-seam circuit breakers intentionally guard only the local
// pool's seams: a remote worker's failures are isolated to its process,
// and tripping shared breakers on one bad worker would starve the rest.

// Long-poll bounds for /worker/lease.
const (
	defaultLeaseWait = 5 * time.Second
	maxLeaseWait     = 60 * time.Second
)

// leaseRequest is the body of POST /worker/lease.
type leaseRequest struct {
	// WaitMS bounds the long poll; zero means 5s, capped at 60s.
	WaitMS int64 `json:"wait_ms,omitempty"`
	// Worker is the caller's self-chosen identity, tracked by the
	// coordinator's health scoring: rejected results count against it
	// and a condemned identity's lease requests are refused (403).
	// Empty is anonymous — legal, but untracked and uncondemnable, so
	// fleets that want quarantine must set it. Self-reporting is not a
	// trust problem: an identity only ever accumulates blame, so the
	// worst a liar can do by rotating names is reset its own rap sheet,
	// and every lie it tells is still rejected per-result.
	Worker string `json:"worker,omitempty"`
}

// leaseResponse hands one leased layout task to a worker. Spec and
// Scale carry everything the worker needs to derive the campaign config
// locally — the seed tuple discipline guarantees its runner is
// equivalent to the coordinator's.
type leaseResponse struct {
	LeaseID    string            `json:"lease_id"`
	CampaignID string            `json:"campaign_id"`
	Layout     int               `json:"layout"`
	Attempt    int               `json:"attempt"`
	Spec       JobSpec           `json:"spec"`
	Scale      experiments.Scale `json:"scale"`
	// Generation and Genome carry a search individual: the genome's
	// canonical binary encoding (base64 over the wire), which the
	// worker decodes through the validating codec and executes in place
	// of a layout index. Layout is then the index within the
	// generation, used only for reporting.
	Generation int    `json:"generation,omitempty"`
	Genome     []byte `json:"genome,omitempty"`
	// LeaseMS is the coordinator's lease duration; workers heartbeat at
	// a third of it.
	LeaseMS int64 `json:"lease_ms"`
}

// leaseRef names a lease in heartbeat requests.
type leaseRef struct {
	LeaseID string `json:"lease_id"`
}

// completeRequest reports one finished execution: an observation on
// success, an error string on failure. Exactly one should be set.
type completeRequest struct {
	LeaseID     string        `json:"lease_id"`
	Observation *core.ObsWire `json:"observation,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// ack is the empty-but-valid JSON body of settled protocol calls.
type ack struct {
	OK bool `json:"ok"`
}

// decodeBody decodes a small protocol body strictly. An empty body
// decodes to the zero value, so lease requests can omit the JSON.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// handleLease long-polls the queue for a task, drains tasks of dead
// campaigns in place (exactly like the local worker loop), and hands
// the first live one to the caller under a registered lease ID.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad lease request: " + err.Error()})
		return
	}
	wait := defaultLeaseWait
	if req.WaitMS > 0 {
		wait = time.Duration(req.WaitMS) * time.Millisecond
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	// Quarantined workers get refused before touching the queue: their
	// identity is condemned, not any one task.
	if s.remote.Quarantined(req.Worker) {
		s.refusals.Inc()
		s.writeJSON(w, http.StatusForbidden, errorResponse{Error: "worker quarantined"})
		return
	}
	// Dead workers leave registry entries behind; sweeping on the lease
	// path bounds them without a background goroutine.
	s.remote.Sweep()
	// The wait clamp doubles as the server-side deadline: however the
	// client behaves, the handler goroutine is released when the
	// long-poll window closes.
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	for {
		lease, err := s.queue.Pop(ctx)
		if errors.Is(err, jobqueue.ErrClosed) {
			s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ErrDraining.Error()})
			return
		}
		if err != nil { // long poll elapsed (or caller went away)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		// Re-check after the blocking pop: a condemnation that landed
		// mid-poll must not hand this worker new work. The task goes
		// straight back, uncharged.
		if s.remote.Quarantined(req.Worker) {
			lease.Release()
			s.refusals.Inc()
			s.writeJSON(w, http.StatusForbidden, errorResponse{Error: "worker quarantined"})
			return
		}
		t := lease.Payload()
		c := t.camp
		if cerr := c.ctx.Err(); cerr != nil {
			c.abort(context.Cause(c.ctx))
			lease.Complete()
			continue
		}
		resp := leaseResponse{
			LeaseID:    s.remote.Register(lease, req.Worker),
			CampaignID: c.id,
			Layout:     t.layout,
			Attempt:    lease.Attempt(),
			Spec:       c.spec,
			Scale:      s.cfg.scale(),
			LeaseMS:    s.cfg.lease().Milliseconds(),
		}
		if t.genome != nil {
			resp.Generation = t.gen
			resp.Genome = toolchain.EncodeGenome(*t.genome)
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
}

// handleHeartbeat extends a remote lease; 410 tells the worker its task
// has been requeued and it must abandon the execution.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req leaseRef
	if err := decodeBody(w, r, &req); err != nil || req.LeaseID == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad heartbeat request"})
		return
	}
	if err := s.remote.Heartbeat(req.LeaseID); err != nil {
		s.writeJSON(w, http.StatusGone, errorResponse{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleComplete settles a remote execution through the same paths the
// local pool uses. Duplicate or late completions (expired lease) return
// 410 and the result is discarded — by determinism the task's next
// owner derives identical bytes, so nothing is lost.
//
// Observations are verified before they merge (DESIGN.md §14): the
// attestation must re-derive from the coordinator's own spec and the
// layout seed must match the leased task. A result that fails either
// check is rejected with 422, counts against the reporting worker's
// health, and its task is released — requeued with no attempt charged,
// because the worker was at fault, not the task. Verified results may
// additionally be spot-audited: re-executed through the coordinator's
// reserved runner slot and compared byte for byte; a mismatch condemns
// the worker outright.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := decodeBody(w, r, &req); err != nil || req.LeaseID == "" {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad complete request"})
		return
	}
	lease, worker, ok := s.remote.Take(req.LeaseID)
	if !ok {
		s.writeJSON(w, http.StatusGone, errorResponse{Error: jobqueue.ErrLeaseLost.Error()})
		return
	}
	t := lease.Payload()
	c := t.camp
	if cerr := c.ctx.Err(); cerr != nil {
		c.abort(context.Cause(c.ctx))
		lease.Complete()
		s.writeJSON(w, http.StatusOK, ack{OK: true})
		return
	}
	switch {
	case req.Error != "":
		// An honest failure report is health-neutral: injected faults
		// and real build/measure errors must not quarantine a truthful
		// worker. It costs the attempt it claimed to be.
		s.taskFailed(lease, c, t, errors.New(req.Error))
	case req.Observation == nil:
		s.taskFailed(lease, c, t, errors.New("worker reported neither observation nor error"))
	default:
		if err := verifyResult(c, t, req.Observation); err != nil {
			s.rejectResult(w, lease, worker, err)
			return
		}
		if s.auditPick(c, t, lease.Attempt()) {
			match, aerr := s.audit(c, t, req.Observation)
			switch {
			case aerr != nil:
				// The audit infrastructure failed, not the worker; the
				// verified result is accepted unaudited.
				s.auditErrs.Inc()
			case !match:
				s.auditFails.Inc()
				s.remote.FailAudit(worker)
				s.condemnWorker(worker)
				// ErrLeaseLost here means a racing reap already
				// requeued the task — exactly once either way.
				lease.Release()
				s.writeJSON(w, http.StatusUnprocessableEntity,
					errorResponse{Error: "audit mismatch: re-execution disowned the reported observation"})
				return
			}
		}
		s.remote.Accept(worker)
		o := req.Observation.Observation()
		if t.genome != nil {
			c.completeSearch(t, core.CompletedObservation(o, c.attemptsOf(t.layout)+1))
		} else {
			c.complete(t.layout, core.CompletedObservation(o, c.attemptsOf(t.layout)+1))
		}
		lease.Complete()
	}
	s.writeJSON(w, http.StatusOK, ack{OK: true})
}

// verifyResult runs the cheap structural checks on a reported
// observation: the attestation must re-derive against the campaign's
// own toolchain identity, and the layout seed must be the leased
// task's. Both are pure recomputation from the coordinator's spec — no
// re-execution.
func verifyResult(c *campaign, t task, o *core.ObsWire) error {
	if err := o.VerifyAttestation(c.runner.AttestationKey()); err != nil {
		return err
	}
	if t.genome != nil {
		// Search individual: the observation must carry the genome's
		// fingerprint as its layout seed, or it was derived from the
		// wrong genome.
		if want := t.genome.Fingerprint(); o.LayoutSeed != want {
			return fmt.Errorf("worker observation has layout seed %#x, genome fingerprint is %#x", o.LayoutSeed, want)
		}
		return nil
	}
	if want := c.runner.LayoutSeed(t.layout); o.LayoutSeed != want {
		return fmt.Errorf("worker observation has layout seed %#x, layout %d derives %#x", o.LayoutSeed, t.layout, want)
	}
	return nil
}

// rejectResult refuses a result that failed verification: the worker is
// blamed (condemned if it just crossed the quarantine threshold), the
// task is released uncharged, and the worker sees 422 — a terminal
// verdict it must not retry.
func (s *Server) rejectResult(w http.ResponseWriter, lease *jobqueue.Lease[task], worker string, err error) {
	s.attRejects.Inc()
	if s.remote.Reject(worker) {
		s.condemnWorker(worker)
	}
	// ErrLeaseLost here means a racing reap or condemnation sweep
	// already requeued the task — exactly once either way.
	lease.Release()
	s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
}

// condemnWorker quarantines a worker and returns its live leases to the
// queue with no attempt charged. Exactly one caller observes first and
// records the condemnation; racing completions may both call this, but
// the registry hands each lease out once.
func (s *Server) condemnWorker(worker string) {
	leases, first := s.remote.Condemn(worker)
	if first {
		s.condemned.Inc()
		s.quarGauge.Set(float64(s.remote.QuarantinedCount()))
	}
	for _, l := range leases {
		l.Release()
	}
}

// auditPick decides deterministically whether this completion is
// spot-audited: the sampler is seeded by (campaign seed, task key,
// attempt), so the audit schedule is a property of the campaign, not of
// scheduling or worker count.
func (s *Server) auditPick(c *campaign, t task, attempt int) bool {
	rate := s.cfg.AuditRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	key := uint64(0)
	if t.genome != nil {
		key = t.genome.Fingerprint()
	} else {
		key = c.runner.LayoutSeed(t.layout)
	}
	return xrand.New(xrand.Mix(0xa0d17ed, c.spec.effectiveSeed(), key, uint64(attempt))).Float64() < rate
}

// audit re-executes the leased task through the campaign's reserved
// runner slot and compares the observation byte for byte with what the
// worker reported. Audits assume the coordinator's own seams are clean
// (no fault injector on the serve path); they run serialized on the one
// reserved slot, so at most one audit's build+measure is in flight.
func (s *Server) audit(c *campaign, t task, got *core.ObsWire) (match bool, err error) {
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	s.audits.Inc()
	slot := c.runner.Workers() - 1
	var o core.Observation
	err = core.Guard(func() error {
		var exe *toolchain.Executable
		var gerr error
		if t.genome != nil {
			exe, gerr = c.runner.BuildGenome(*t.genome)
			if gerr != nil {
				return gerr
			}
			o, gerr = c.runner.MeasureGenome(slot, *t.genome, exe)
			return gerr
		}
		exe, gerr = c.runner.BuildLayout(t.layout)
		if gerr != nil {
			return gerr
		}
		o, gerr = c.runner.MeasureLayout(slot, t.layout, exe)
		return gerr
	})
	if err != nil {
		return false, err
	}
	want := o.Wire()
	want.Fingerprint = want.Attest(c.runner.AttestationKey())
	return auditEqual(*got, want), nil
}

// auditEqual compares two wire observations field by field, fingerprint
// included — the audit's verdict is byte-identity, nothing weaker.
func auditEqual(a, b core.ObsWire) bool {
	return a.LayoutSeed == b.LayoutSeed &&
		a.HeapSeed == b.HeapSeed &&
		a.Cycles == b.Cycles &&
		a.Instructions == b.Instructions &&
		a.Runs == b.Runs &&
		a.Status == b.Status &&
		a.Attempts == b.Attempts &&
		a.Fingerprint == b.Fingerprint &&
		slices.Equal(a.Events, b.Events)
}
