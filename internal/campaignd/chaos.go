package campaignd

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue"
	"interferometry/internal/jobqueue/backoff"
	"interferometry/internal/results"
)

// SoakConfig parameterizes a chaos soak run (campaignd -chaos).
type SoakConfig struct {
	// Spec is the campaign measured every round.
	Spec JobSpec
	// Scale supplies the spec's defaults. Zero means experiments.Small.
	Scale experiments.Scale
	// Rounds is how many faulted service rounds to run; each round uses
	// a derived injector seed, so the fault schedule varies round to
	// round but is reproducible as a whole. Zero means 3.
	Rounds int
	// Seed roots the per-round injector seeds.
	Seed uint64
	// Rates is the fault mix injected into both seams each round.
	// KindCorrupt rates must be zero: a corrupted measurement is not an
	// error the service can observe, so it cannot promise byte-identity
	// under it (that screen is the MAD outlier pass, not campaignd's).
	Rates faultinject.Rates
	// Workers, QueueCapacity, Lease and MaxAttempts configure each
	// round's server as in Config.
	Workers       int
	QueueCapacity int
	Lease         time.Duration
	MaxAttempts   int
	// ShardWorkers, when positive, runs every round in sharded mode:
	// the server becomes a pure coordinator and this many worker
	// processes (in-process Worker instances, sharing the round's fault
	// injector) pull its tasks over real HTTP. The byte-identity check
	// is unchanged — sharding must not move a byte.
	ShardWorkers int
	// WorkerBatch is each sharded worker's lease batch width
	// (Worker.Batch): grouped leases share one batched trace walk. The
	// byte-identity check is unchanged — batching must not move a byte.
	WorkerBatch int
	// CoordinatorKills, when positive, runs each round against a
	// WAL-backed coordinator that is hard-killed (Server.Kill — no
	// drain, no flush) this many times mid-campaign and restarted on the
	// same WAL dir. The campaign is submitted exactly once; every
	// restart must resume it from the WAL and checkpoints on its own,
	// and the finished export must still be byte-identical to the clean
	// run. Incompatible with ShardWorkers.
	CoordinatorKills int
	// Timeout bounds each round. Zero means 2 minutes.
	Timeout time.Duration
	// Out receives the per-round report. Nil discards it.
	Out io.Writer
}

func (c SoakConfig) rounds() int {
	if c.Rounds <= 0 {
		return 3
	}
	return c.Rounds
}

func (c SoakConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Minute
	}
	return c.Timeout
}

func (c SoakConfig) scale() experiments.Scale {
	if c.Scale.Name == "" {
		return experiments.Small
	}
	return c.Scale
}

// Soak is the deterministic chaos harness behind campaignd -chaos: it
// computes the spec's reference dataset with a clean single-process
// core.RunCampaign, then repeatedly runs the whole service — real HTTP
// listener, queue, breakers, retries — under an injected fault schedule
// of error bursts, panics and latency spikes, and fails unless every
// round's measurement export is byte-identical to the reference.
func Soak(cfg SoakConfig) error {
	if cfg.Rates.Corrupt > 0 {
		return fmt.Errorf("campaignd: soak cannot use corrupt faults: a silently wrong measurement is invisible to the service (screen it with the MAD outlier pass instead)")
	}
	if cfg.CoordinatorKills > 0 && cfg.ShardWorkers > 0 {
		return fmt.Errorf("campaignd: coordinator-kill rounds cannot run sharded: restarted coordinators listen on new addresses the workers were not told about")
	}
	if err := cfg.Spec.validate(); err != nil {
		return err
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}

	// The ground truth: one clean, single-process run of the spec. For a
	// search spec that is core.RunSearch's trajectory — the canonical
	// generations CSV plus the summary report — instead of the dataset.
	var ref, refReport bytes.Buffer
	if cfg.Spec.IsSearch() {
		searchCfg, err := searchConfig(cfg.Spec, cfg.scale())
		if err != nil {
			return err
		}
		clean, err := core.RunSearch(searchCfg)
		if err != nil {
			return fmt.Errorf("campaignd: clean reference search: %w", err)
		}
		if err := results.WriteGenerationMeasurementsCSV(&ref, clean); err != nil {
			return err
		}
		if err := results.WriteJSON(&refReport, results.SummarizeSearch(clean)); err != nil {
			return err
		}
		fmt.Fprintf(out, "soak %s: search %d×%d, reference %d bytes, %d rounds\n",
			cfg.Spec.Benchmark, clean.Config.Population, clean.Config.Generations, ref.Len(), cfg.rounds())
	} else {
		campCfg, err := campaignConfig(cfg.Spec, cfg.scale())
		if err != nil {
			return err
		}
		clean, err := core.RunCampaign(campCfg)
		if err != nil {
			return fmt.Errorf("campaignd: clean reference run: %w", err)
		}
		if err := results.WriteMeasurementsCSV(&ref, clean); err != nil {
			return err
		}
		fmt.Fprintf(out, "soak %s: %d layouts, reference %d bytes, %d rounds\n",
			cfg.Spec.Benchmark, len(clean.Obs), ref.Len(), cfg.rounds())
	}

	for round := 0; round < cfg.rounds(); round++ {
		if err := soakRound(cfg, round, ref.Bytes(), refReport.Bytes(), out); err != nil {
			return fmt.Errorf("campaignd: soak round %d: %w", round, err)
		}
	}
	fmt.Fprintf(out, "soak PASS: %d rounds byte-identical to the clean run\n", cfg.rounds())
	return nil
}

// soakRound runs one faulted service instance end to end over HTTP and
// compares its measurement export against the clean reference (for a
// search spec: the canonical generations CSV and, refReport, the
// summary JSON).
func soakRound(cfg SoakConfig, round int, ref, refReport []byte, out io.Writer) error {
	// MaxFaults keeps every fault burst finite per (site, key), so a
	// bounded retry budget always clears it deterministically. A layout
	// can burn MaxFaults attempts in the build seam and MaxFaults more
	// in the measure seam, so success is guaranteed at 2×MaxFaults+1.
	rates := cfg.Rates
	if rates.MaxFaults <= 0 {
		rates.MaxFaults = 2
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2*rates.MaxFaults + 1
	}
	if rates.MaxFaults > (maxAttempts-1)/2 {
		rates.MaxFaults = (maxAttempts - 1) / 2
	}
	injector := faultinject.New(cfg.Seed+uint64(round)*0x9e3779b9, faultinject.Config{
		Build:   rates,
		Measure: rates,
	})

	sharded := cfg.ShardWorkers > 0
	scfg := Config{
		Scale:         cfg.scale(),
		Workers:       cfg.Workers,
		QueueCapacity: cfg.QueueCapacity,
		Lease:         cfg.Lease,
		MaxAttempts:   maxAttempts,
		Backoff:       backoff.Policy{Base: time.Millisecond, Cap: 20 * time.Millisecond, Jitter: 0.5},
		Breaker: jobqueue.BreakerConfig{
			TripAfter: 3,
			OpenFor:   20 * time.Millisecond,
			Probes:    2,
		},
	}
	if sharded {
		// The seams live in the workers, so the injector goes there.
		scfg.NoLocalWorkers = true
	} else {
		scfg.Faults = injector
	}
	if cfg.CoordinatorKills > 0 {
		// Kill rounds need durable coordinator state: a WAL (plus
		// checkpoints under it) that every restarted coordinator reopens.
		walDir, werr := os.MkdirTemp("", "campaignd-soak-wal-*")
		if werr != nil {
			return werr
		}
		defer os.RemoveAll(walDir)
		scfg.WALDir = walDir
		scfg.CheckpointRoot = filepath.Join(walDir, "checkpoints")
	}
	srv, err := New(scfg)
	if err != nil {
		return err
	}
	srv.Start()
	defer func() { srv.Drain() }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() { httpSrv.Close() }()

	if sharded {
		wctx, stopWorkers := context.WithCancel(context.Background())
		var wwg sync.WaitGroup
		for n := 0; n < cfg.ShardWorkers; n++ {
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				w := &Worker{
					Coordinator: "http://" + ln.Addr().String(),
					Batch:       cfg.WorkerBatch,
					Wait:        500 * time.Millisecond,
					Faults:      injector,
				}
				w.Run(wctx)
			}()
		}
		defer wwg.Wait()
		defer stopWorkers()
		fmt.Fprintf(out, "round %d: sharded across %d workers (batch %d)\n", round, cfg.ShardWorkers, cfg.WorkerBatch)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout())
	defer cancel()
	client := &Client{Base: "http://" + ln.Addr().String()}
	st, err := client.SubmitWait(ctx, cfg.Spec)
	if err != nil {
		return err
	}

	// Hard-kill and restart the coordinator mid-campaign. The campaign
	// is never resubmitted: each restarted coordinator must bring it
	// back from the WAL and its checkpoints on its own.
	// One task per layout — or, for a search, one per individual across
	// the whole trajectory, so kills land spread across generations (and
	// usually inside one, which is the harsher case: the in-flight
	// generation's progress is lost and re-derived from the checkpoint).
	totalTasks := st.Layouts
	if cfg.Spec.IsSearch() {
		totalTasks = st.Layouts * st.Generations
	}
	for k := 1; k <= cfg.CoordinatorKills; k++ {
		// Let the campaign make proportional progress before each kill,
		// so the kills land spread across its lifetime.
		target := totalTasks * k / (cfg.CoordinatorKills + 1)
		for {
			cur, serr := client.Status(ctx, st.ID)
			if serr != nil {
				return serr
			}
			if cur.State != StateRunning || cur.Completed > target {
				break
			}
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-time.After(2 * time.Millisecond):
			}
		}
		srv.Kill()
		httpSrv.Close()
		if srv, err = New(scfg); err != nil {
			return fmt.Errorf("coordinator restart %d: %w", k, err)
		}
		srv.Start()
		if ln, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return err
		}
		httpSrv = &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		client = &Client{Base: "http://" + ln.Addr().String()}
		if _, serr := client.Status(ctx, st.ID); serr != nil {
			// The campaign finalized in the instant before the kill, so
			// the WAL rightly dropped it. Re-admit: the checkpoint makes
			// this an instant resume, not a re-run.
			if st, err = client.SubmitWait(ctx, cfg.Spec); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "round %d: coordinator kill %d/%d, restarted on the same WAL\n",
			round, k, cfg.CoordinatorKills)
	}

	if st, err = client.Wait(ctx, st.ID, 50*time.Millisecond); err != nil {
		return err
	}
	if st.State != StateDone {
		return fmt.Errorf("campaign ended %s: %s", st.State, st.Error)
	}
	var got, gotReport []byte
	switch {
	case cfg.Spec.IsSearch() && cfg.CoordinatorKills > 0:
		// Exercise the paginated generations path too: streamed pages
		// must concatenate to the exact blob bytes.
		var stream bytes.Buffer
		if err := client.StreamGenerations(ctx, st.ID, 2, true, &stream); err != nil {
			return err
		}
		got = stream.Bytes()
	case cfg.Spec.IsSearch():
		if got, err = client.Generations(ctx, st.ID, true); err != nil {
			return err
		}
	case cfg.CoordinatorKills > 0:
		// Exercise the paginated results path too: streamed pages must
		// concatenate to the exact blob bytes.
		var stream bytes.Buffer
		if err := client.StreamMeasurements(ctx, st.ID, 3, &stream); err != nil {
			return err
		}
		got = stream.Bytes()
	default:
		if got, err = client.Measurements(ctx, st.ID); err != nil {
			return err
		}
	}
	if cfg.Spec.IsSearch() {
		if gotReport, err = client.SearchReport(ctx, st.ID); err != nil {
			return err
		}
	}

	counts := injector.Counts(faultinject.SiteBuild)
	mcounts := injector.Counts(faultinject.SiteMeasure)
	fmt.Fprintf(out, "round %d: %d faults (build err=%d panic=%d slow=%d spike=%d / measure err=%d panic=%d slow=%d spike=%d)",
		round, injector.Injected(),
		counts[faultinject.KindError], counts[faultinject.KindPanic], counts[faultinject.KindSlow], counts[faultinject.KindSpike],
		mcounts[faultinject.KindError], mcounts[faultinject.KindPanic], mcounts[faultinject.KindSlow], mcounts[faultinject.KindSpike])
	if !bytes.Equal(got, ref) {
		fmt.Fprintf(out, " MISMATCH\n")
		return fmt.Errorf("measurements diverged from the clean run (%d vs %d bytes)", len(got), len(ref))
	}
	if cfg.Spec.IsSearch() && !bytes.Equal(gotReport, refReport) {
		fmt.Fprintf(out, " REPORT MISMATCH\n")
		return fmt.Errorf("search report diverged from the clean run (%d vs %d bytes)", len(gotReport), len(refReport))
	}
	fmt.Fprintf(out, " identical\n")
	return nil
}
