package campaignd

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue"
	"interferometry/internal/jobqueue/backoff"
	"interferometry/internal/results"
)

// SoakConfig parameterizes a chaos soak run (campaignd -chaos).
type SoakConfig struct {
	// Spec is the campaign measured every round.
	Spec JobSpec
	// Scale supplies the spec's defaults. Zero means experiments.Small.
	Scale experiments.Scale
	// Rounds is how many faulted service rounds to run; each round uses
	// a derived injector seed, so the fault schedule varies round to
	// round but is reproducible as a whole. Zero means 3.
	Rounds int
	// Seed roots the per-round injector seeds.
	Seed uint64
	// Rates is the fault mix injected into both seams each round.
	// KindCorrupt rates must be zero: a corrupted measurement is not an
	// error the service can observe, so it cannot promise byte-identity
	// under it (that screen is the MAD outlier pass, not campaignd's).
	Rates faultinject.Rates
	// Workers, QueueCapacity, Lease and MaxAttempts configure each
	// round's server as in Config.
	Workers       int
	QueueCapacity int
	Lease         time.Duration
	MaxAttempts   int
	// ShardWorkers, when positive, runs every round in sharded mode:
	// the server becomes a pure coordinator and this many worker
	// processes (in-process Worker instances, sharing the round's fault
	// injector) pull its tasks over real HTTP. The byte-identity check
	// is unchanged — sharding must not move a byte.
	ShardWorkers int
	// WorkerBatch is each sharded worker's lease batch width
	// (Worker.Batch): grouped leases share one batched trace walk. The
	// byte-identity check is unchanged — batching must not move a byte.
	WorkerBatch int
	// WorkerDelta selects each sharded worker's delta-replay mode
	// (Worker.Delta). The byte-identity check is unchanged — delta replay
	// must not move a byte either, and DeltaOn rounds prove the engine's
	// fallback path under the same fault schedule.
	WorkerDelta core.DeltaMode
	// ByzantineWorkers, when positive, makes this many of the sharded
	// workers liars (faultinject.Liar): every result they report is
	// corrupted — bit-flipped counters, stale layout seeds, replayed old
	// results, bad or forged fingerprints. The round starts the liars
	// first and waits until the coordinator has quarantined every one of
	// them before the honest workers join, so the byte-identity check
	// proves the corrupt results never reached a merged dataset and the
	// requeues charged no attempts. Requires ShardWorkers >
	// ByzantineWorkers so honest workers remain to finish the campaign.
	ByzantineWorkers int
	// AuditRate is the coordinator's spot-audit sampling rate for each
	// round (Config.AuditRate). Byzantine rounds force it to 1 when left
	// zero: the forged-fingerprint lie is structurally valid and only an
	// audit re-execution can disown it before the merge.
	AuditRate float64
	// CoordinatorKills, when positive, runs each round against a
	// WAL-backed coordinator that is hard-killed (Server.Kill — no
	// drain, no flush) this many times mid-campaign and restarted on the
	// same WAL dir. The campaign is submitted exactly once; every
	// restart must resume it from the WAL and checkpoints on its own,
	// and the finished export must still be byte-identical to the clean
	// run. Incompatible with ShardWorkers.
	CoordinatorKills int
	// Timeout bounds each round. Zero means 2 minutes.
	Timeout time.Duration
	// Out receives the per-round report. Nil discards it.
	Out io.Writer
}

func (c SoakConfig) rounds() int {
	if c.Rounds <= 0 {
		return 3
	}
	return c.Rounds
}

func (c SoakConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Minute
	}
	return c.Timeout
}

func (c SoakConfig) scale() experiments.Scale {
	if c.Scale.Name == "" {
		return experiments.Small
	}
	return c.Scale
}

// Soak is the deterministic chaos harness behind campaignd -chaos: it
// computes the spec's reference dataset with a clean single-process
// core.RunCampaign, then repeatedly runs the whole service — real HTTP
// listener, queue, breakers, retries — under an injected fault schedule
// of error bursts, panics and latency spikes, and fails unless every
// round's measurement export is byte-identical to the reference.
func Soak(cfg SoakConfig) error {
	if cfg.Rates.Corrupt > 0 {
		return fmt.Errorf("campaignd: soak cannot use corrupt faults: a silently wrong measurement is invisible to the service (screen it with the MAD outlier pass instead)")
	}
	if cfg.CoordinatorKills > 0 && cfg.ShardWorkers > 0 {
		return fmt.Errorf("campaignd: coordinator-kill rounds cannot run sharded: restarted coordinators listen on new addresses the workers were not told about")
	}
	if cfg.ByzantineWorkers > 0 && cfg.ByzantineWorkers >= cfg.ShardWorkers {
		return fmt.Errorf("campaignd: byzantine soak needs ShardWorkers > ByzantineWorkers (%d liars of %d workers leaves nobody honest to finish)", cfg.ByzantineWorkers, cfg.ShardWorkers)
	}
	if err := cfg.Spec.validate(); err != nil {
		return err
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}

	// The ground truth: one clean, single-process run of the spec. For a
	// search spec that is core.RunSearch's trajectory — the canonical
	// generations CSV plus the summary report — instead of the dataset.
	// Byzantine rounds without injected seam faults additionally pin the
	// provenance export (status/attempts columns): honest re-execution of
	// a liar's requeued task must still show attempt 1, proving the
	// requeue charged nothing.
	byzProvenance := cfg.ByzantineWorkers > 0 && !cfg.Spec.IsSearch() &&
		cfg.Rates.Error == 0 && cfg.Rates.Panic == 0 && cfg.Rates.Slow == 0 && cfg.Rates.Spike == 0
	var ref, refReport, refProvenance bytes.Buffer
	if cfg.Spec.IsSearch() {
		searchCfg, err := searchConfig(cfg.Spec, cfg.scale())
		if err != nil {
			return err
		}
		clean, err := core.RunSearch(searchCfg)
		if err != nil {
			return fmt.Errorf("campaignd: clean reference search: %w", err)
		}
		if err := results.WriteGenerationMeasurementsCSV(&ref, clean); err != nil {
			return err
		}
		if err := results.WriteJSON(&refReport, results.SummarizeSearch(clean)); err != nil {
			return err
		}
		fmt.Fprintf(out, "soak %s: search %d×%d, reference %d bytes, %d rounds\n",
			cfg.Spec.Benchmark, clean.Config.Population, clean.Config.Generations, ref.Len(), cfg.rounds())
	} else {
		campCfg, err := campaignConfig(cfg.Spec, cfg.scale())
		if err != nil {
			return err
		}
		clean, err := core.RunCampaign(campCfg)
		if err != nil {
			return fmt.Errorf("campaignd: clean reference run: %w", err)
		}
		if err := results.WriteMeasurementsCSV(&ref, clean); err != nil {
			return err
		}
		if byzProvenance {
			if err := results.WriteDatasetCSV(&refProvenance, clean); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "soak %s: %d layouts, reference %d bytes, %d rounds\n",
			cfg.Spec.Benchmark, len(clean.Obs), ref.Len(), cfg.rounds())
	}

	for round := 0; round < cfg.rounds(); round++ {
		if err := soakRound(cfg, round, ref.Bytes(), refReport.Bytes(), refProvenance.Bytes(), out); err != nil {
			return fmt.Errorf("campaignd: soak round %d: %w", round, err)
		}
	}
	fmt.Fprintf(out, "soak PASS: %d rounds byte-identical to the clean run\n", cfg.rounds())
	return nil
}

// soakRound runs one faulted service instance end to end over HTTP and
// compares its measurement export against the clean reference (for a
// search spec: the canonical generations CSV and, refReport, the
// summary JSON; for fault-free byzantine rounds, refProvenance, the
// full dataset export with status/attempts columns).
func soakRound(cfg SoakConfig, round int, ref, refReport, refProvenance []byte, out io.Writer) error {
	// MaxFaults keeps every fault burst finite per (site, key), so a
	// bounded retry budget always clears it deterministically. A layout
	// can burn MaxFaults attempts in the build seam and MaxFaults more
	// in the measure seam, so success is guaranteed at 2×MaxFaults+1.
	rates := cfg.Rates
	if rates.MaxFaults <= 0 {
		rates.MaxFaults = 2
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2*rates.MaxFaults + 1
	}
	if rates.MaxFaults > (maxAttempts-1)/2 {
		rates.MaxFaults = (maxAttempts - 1) / 2
	}
	injector := faultinject.New(cfg.Seed+uint64(round)*0x9e3779b9, faultinject.Config{
		Build:   rates,
		Measure: rates,
	})

	sharded := cfg.ShardWorkers > 0
	byzantine := cfg.ByzantineWorkers > 0
	auditRate := cfg.AuditRate
	if byzantine && auditRate == 0 {
		// The forged-fingerprint lie verifies structurally; only a
		// re-execution can disown it before the merge, so byzantine
		// rounds audit everything unless told otherwise.
		auditRate = 1
	}
	scfg := Config{
		Scale:         cfg.scale(),
		Workers:       cfg.Workers,
		QueueCapacity: cfg.QueueCapacity,
		Lease:         cfg.Lease,
		MaxAttempts:   maxAttempts,
		AuditRate:     auditRate,
		Backoff:       backoff.Policy{Base: time.Millisecond, Cap: 20 * time.Millisecond, Jitter: 0.5},
		Breaker: jobqueue.BreakerConfig{
			TripAfter: 3,
			OpenFor:   20 * time.Millisecond,
			Probes:    2,
		},
	}
	if sharded {
		// The seams live in the workers, so the injector goes there.
		scfg.NoLocalWorkers = true
	} else {
		scfg.Faults = injector
	}
	if cfg.CoordinatorKills > 0 {
		// Kill rounds need durable coordinator state: a WAL (plus
		// checkpoints under it) that every restarted coordinator reopens.
		walDir, werr := os.MkdirTemp("", "campaignd-soak-wal-*")
		if werr != nil {
			return werr
		}
		defer os.RemoveAll(walDir)
		scfg.WALDir = walDir
		scfg.CheckpointRoot = filepath.Join(walDir, "checkpoints")
	}
	srv, err := New(scfg)
	if err != nil {
		return err
	}
	srv.Start()
	defer func() { srv.Drain() }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := NewHTTPServer(srv.Handler())
	go httpSrv.Serve(ln)
	defer func() { httpSrv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout())
	defer cancel()
	client := &Client{Base: "http://" + ln.Addr().String()}

	var liars []string
	var st Status
	if sharded {
		wctx, stopWorkers := context.WithCancel(context.Background())
		var wwg sync.WaitGroup
		startWorker := func(w *Worker) {
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				w.Run(wctx)
			}()
		}
		defer wwg.Wait()
		defer stopWorkers()
		honest := cfg.ShardWorkers
		if byzantine {
			// Stage the fleet: liars first, honest workers only after
			// every liar is quarantined. The submit races the liars, but
			// nothing they report ever merges — each corrupt result is
			// rejected or audit-disowned and its task requeued uncharged —
			// so the eventual dataset is the honest workers' alone and the
			// byte-identity check below proves it.
			honest -= cfg.ByzantineWorkers
			if st, err = client.SubmitWait(ctx, cfg.Spec); err != nil {
				return err
			}
			for n := 0; n < cfg.ByzantineWorkers; n++ {
				id := fmt.Sprintf("soak-r%d-liar%d", round, n)
				liars = append(liars, id)
				startWorker(&Worker{
					Coordinator: "http://" + ln.Addr().String(),
					ID:          id,
					Batch:       cfg.WorkerBatch,
					Delta:       cfg.WorkerDelta,
					Wait:        500 * time.Millisecond,
					Tamper:      faultinject.NewLiar(cfg.Seed + uint64(round)*0x9e3779b9 + uint64(n)),
				})
			}
			if err := waitQuarantined(ctx, srv, liars); err != nil {
				return err
			}
			fmt.Fprintf(out, "round %d: %d byzantine workers quarantined, %d honest workers joining (batch %d)\n",
				round, len(liars), honest, cfg.WorkerBatch)
		}
		for n := 0; n < honest; n++ {
			w := &Worker{
				Coordinator: "http://" + ln.Addr().String(),
				Batch:       cfg.WorkerBatch,
				Delta:       cfg.WorkerDelta,
				Wait:        500 * time.Millisecond,
				Faults:      injector,
			}
			if byzantine {
				w.ID = fmt.Sprintf("soak-r%d-w%d", round, n)
			}
			startWorker(w)
		}
		if !byzantine {
			fmt.Fprintf(out, "round %d: sharded across %d workers (batch %d)\n", round, cfg.ShardWorkers, cfg.WorkerBatch)
		}
	}

	if !byzantine {
		if st, err = client.SubmitWait(ctx, cfg.Spec); err != nil {
			return err
		}
	}

	// Hard-kill and restart the coordinator mid-campaign. The campaign
	// is never resubmitted: each restarted coordinator must bring it
	// back from the WAL and its checkpoints on its own.
	// One task per layout — or, for a search, one per individual across
	// the whole trajectory, so kills land spread across generations (and
	// usually inside one, which is the harsher case: the in-flight
	// generation's progress is lost and re-derived from the checkpoint).
	totalTasks := st.Layouts
	if cfg.Spec.IsSearch() {
		totalTasks = st.Layouts * st.Generations
	}
	for k := 1; k <= cfg.CoordinatorKills; k++ {
		// Let the campaign make proportional progress before each kill,
		// so the kills land spread across its lifetime.
		target := totalTasks * k / (cfg.CoordinatorKills + 1)
		for {
			cur, serr := client.Status(ctx, st.ID)
			if serr != nil {
				return serr
			}
			if cur.State != StateRunning || cur.Completed > target {
				break
			}
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-time.After(2 * time.Millisecond):
			}
		}
		srv.Kill()
		httpSrv.Close()
		if srv, err = New(scfg); err != nil {
			return fmt.Errorf("coordinator restart %d: %w", k, err)
		}
		srv.Start()
		if ln, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return err
		}
		httpSrv = NewHTTPServer(srv.Handler())
		go httpSrv.Serve(ln)
		client = &Client{Base: "http://" + ln.Addr().String()}
		if _, serr := client.Status(ctx, st.ID); serr != nil {
			// The campaign finalized in the instant before the kill, so
			// the WAL rightly dropped it. Re-admit: the checkpoint makes
			// this an instant resume, not a re-run.
			if st, err = client.SubmitWait(ctx, cfg.Spec); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "round %d: coordinator kill %d/%d, restarted on the same WAL\n",
			round, k, cfg.CoordinatorKills)
	}

	if st, err = client.Wait(ctx, st.ID, 50*time.Millisecond); err != nil {
		return err
	}
	if st.State != StateDone {
		return fmt.Errorf("campaign ended %s: %s", st.State, st.Error)
	}
	var got, gotReport []byte
	switch {
	case cfg.Spec.IsSearch() && cfg.CoordinatorKills > 0:
		// Exercise the paginated generations path too: streamed pages
		// must concatenate to the exact blob bytes.
		var stream bytes.Buffer
		if err := client.StreamGenerations(ctx, st.ID, 2, true, &stream); err != nil {
			return err
		}
		got = stream.Bytes()
	case cfg.Spec.IsSearch():
		if got, err = client.Generations(ctx, st.ID, true); err != nil {
			return err
		}
	case cfg.CoordinatorKills > 0:
		// Exercise the paginated results path too: streamed pages must
		// concatenate to the exact blob bytes.
		var stream bytes.Buffer
		if err := client.StreamMeasurements(ctx, st.ID, 3, &stream); err != nil {
			return err
		}
		got = stream.Bytes()
	default:
		if got, err = client.Measurements(ctx, st.ID); err != nil {
			return err
		}
	}
	if cfg.Spec.IsSearch() {
		if gotReport, err = client.SearchReport(ctx, st.ID); err != nil {
			return err
		}
	}

	counts := injector.Counts(faultinject.SiteBuild)
	mcounts := injector.Counts(faultinject.SiteMeasure)
	fmt.Fprintf(out, "round %d: %d faults (build err=%d panic=%d slow=%d spike=%d / measure err=%d panic=%d slow=%d spike=%d)",
		round, injector.Injected(),
		counts[faultinject.KindError], counts[faultinject.KindPanic], counts[faultinject.KindSlow], counts[faultinject.KindSpike],
		mcounts[faultinject.KindError], mcounts[faultinject.KindPanic], mcounts[faultinject.KindSlow], mcounts[faultinject.KindSpike])
	if !bytes.Equal(got, ref) {
		fmt.Fprintf(out, " MISMATCH\n")
		return fmt.Errorf("measurements diverged from the clean run (%d vs %d bytes)", len(got), len(ref))
	}
	if cfg.Spec.IsSearch() && !bytes.Equal(gotReport, refReport) {
		fmt.Fprintf(out, " REPORT MISMATCH\n")
		return fmt.Errorf("search report diverged from the clean run (%d vs %d bytes)", len(gotReport), len(refReport))
	}
	if byzantine {
		// The fleet's health must tell the same story as the bytes: every
		// liar quarantined, every honest worker still trusted.
		health := srv.WorkerHealth()
		for _, id := range liars {
			h, ok := health[id]
			if !ok || !h.Quarantined {
				fmt.Fprintf(out, " LIAR AT LARGE\n")
				return fmt.Errorf("byzantine worker %s not quarantined (health %+v)", id, h)
			}
		}
		for id, h := range health {
			if h.Quarantined && !slices.Contains(liars, id) {
				fmt.Fprintf(out, " HONEST WORKER CONDEMNED\n")
				return fmt.Errorf("honest worker %s was quarantined (health %+v)", id, h)
			}
		}
		if len(refProvenance) > 0 {
			// With no seam faults injected, every clean attempt count is 1;
			// matching bytes prove the liars' requeued tasks were never
			// charged an attempt.
			gotProv, perr := client.Result(ctx, st.ID)
			if perr != nil {
				return perr
			}
			if !bytes.Equal(gotProv, refProvenance) {
				fmt.Fprintf(out, " PROVENANCE MISMATCH\n")
				return fmt.Errorf("provenance export diverged from the clean run (%d vs %d bytes): a requeued task was charged an attempt", len(gotProv), len(refProvenance))
			}
		}
	}
	fmt.Fprintf(out, " identical\n")
	return nil
}

// waitQuarantined polls the coordinator's fleet health until every one
// of the given workers is quarantined (or ctx expires). The liars are
// guaranteed to get there: every observation they report is rejected or
// audit-disowned, and the quarantine threshold is finite.
func waitQuarantined(ctx context.Context, srv *Server, workers []string) error {
	for {
		health := srv.WorkerHealth()
		all := true
		for _, id := range workers {
			if h, ok := health[id]; !ok || !h.Quarantined {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for byzantine quarantine: %w", context.Cause(ctx))
		case <-time.After(2 * time.Millisecond):
		}
	}
}
