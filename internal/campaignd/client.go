package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"interferometry/internal/jobqueue"
)

// Client talks to a campaignd server. The zero value with just Base set
// is usable; cmd/interferometry's -server mode and the chaos soak both
// drive the service through it.
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8347".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RetryError reports a shed submission (429) and the server's backoff
// hint.
type RetryError struct {
	After time.Duration
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("campaignd: overloaded, retry after %s", e.After)
}

// Retry-After clamps. RFC 9110 allows both delta-seconds and an
// HTTP-date; a missing or unparseable value falls back to
// defaultRetryAfter, and any server-supplied wait is capped at
// maxRetryAfter so a typo (or a date far in the future) cannot park the
// client for hours.
const (
	defaultRetryAfter = time.Second
	maxRetryAfter     = 2 * time.Minute
)

// retryAfter parses a Retry-After header value (delta-seconds or
// HTTP-date, per RFC 9110 §10.2.3) into a clamped wait duration. A
// zero or negative delta falls back to the default (the server asked
// for a pause it then didn't name), but an HTTP-date at or before now
// clamps to zero — retry immediately. The distinction matters under
// clock skew: a server a minute behind the client stamps dates that are
// all "in the past" here, and waiting the default on every one would
// turn its named deadlines into an unconditional slowdown.
func retryAfter(h string, now time.Time) time.Duration {
	after := defaultRetryAfter
	if secs, err := strconv.Atoi(h); err == nil {
		if secs > 0 {
			after = time.Duration(secs) * time.Second
		}
	} else if t, err := http.ParseTime(h); err == nil {
		after = t.Sub(now)
		if after < 0 {
			after = 0
		}
	}
	if after > maxRetryAfter {
		after = maxRetryAfter
	}
	return after
}

func (c *Client) decodeError(resp *http.Response) error {
	var er errorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err != nil || er.Error == "" {
		return fmt.Errorf("campaignd: server returned %s", resp.Status)
	}
	return fmt.Errorf("campaignd: %s: %s", resp.Status, er.Error)
}

// Submit posts a spec. A 429 returns *RetryError carrying the server's
// Retry-After hint; SubmitWait wraps the retry loop.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return Status{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/campaigns", bytes.NewReader(body))
	if err != nil {
		return Status{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return Status{}, fmt.Errorf("campaignd: bad status body: %w", err)
		}
		return st, nil
	case http.StatusTooManyRequests:
		return Status{}, &RetryError{After: retryAfter(resp.Header.Get("Retry-After"), time.Now())}
	case http.StatusServiceUnavailable:
		return Status{}, ErrDraining
	default:
		return Status{}, c.decodeError(resp)
	}
}

// SubmitWait submits, honoring 429 Retry-After hints until ctx ends.
func (c *Client) SubmitWait(ctx context.Context, spec JobSpec) (Status, error) {
	for {
		st, err := c.Submit(ctx, spec)
		var re *RetryError
		if !errors.As(err, &re) {
			return st, err
		}
		select {
		case <-ctx.Done():
			return Status{}, context.Cause(ctx)
		case <-time.After(re.After):
		}
	}
}

// Status fetches a campaign's current state.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/campaigns/"+id, nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, c.decodeError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Wait polls until the campaign leaves the running state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return Status{}, context.Cause(ctx)
		case <-time.After(poll):
		}
	}
}

// FleetHealth fetches the coordinator's per-worker health map from
// /queuez: accepted/rejected/audit-failed counters, sliding-window
// score, quarantine state. Empty when the coordinator has never seen a
// named worker.
func (c *Client) FleetHealth(ctx context.Context) (map[string]jobqueue.WorkerHealth, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/queuez", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.decodeError(resp)
	}
	var qz struct {
		Workers map[string]jobqueue.WorkerHealth `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qz); err != nil {
		return nil, err
	}
	return qz.Workers, nil
}

// Result fetches the finished dataset CSV (with provenance columns).
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	return c.fetchCSV(ctx, c.Base+"/campaigns/"+id+"/result")
}

// Measurements fetches the measurement-only canonical CSV.
func (c *Client) Measurements(ctx context.Context, id string) ([]byte, error) {
	return c.fetchCSV(ctx, c.Base+"/campaigns/"+id+"/measurements")
}

// StreamResult fetches the dataset CSV in pages of pageSize rows,
// writing each page to w as it arrives, so a large result never sits
// whole in client memory. The written bytes are identical to Result's.
// pageSize <= 0 means 256 rows per page.
func (c *Client) StreamResult(ctx context.Context, id string, pageSize int, w io.Writer) error {
	return c.streamCSV(ctx, c.Base+"/campaigns/"+id+"/result", pageSize, w)
}

// StreamMeasurements is StreamResult for the measurement-only CSV.
func (c *Client) StreamMeasurements(ctx context.Context, id string, pageSize int, w io.Writer) error {
	return c.streamCSV(ctx, c.Base+"/campaigns/"+id+"/measurements", pageSize, w)
}

// generationsURL builds the generations endpoint URL; canonical selects
// the measurement-only export.
func (c *Client) generationsURL(id string, canonical bool) string {
	url := c.Base + "/campaigns/" + id + "/generations"
	if canonical {
		url += "?canonical=1"
	}
	return url
}

// Generations fetches a search campaign's settled generations CSV.
// Works mid-run (settled generations are immutable); canonical selects
// the measurement-only export that is byte-identical across faulted and
// clean runs.
func (c *Client) Generations(ctx context.Context, id string, canonical bool) ([]byte, error) {
	return c.fetchCSV(ctx, c.generationsURL(id, canonical))
}

// StreamGenerations fetches the generations CSV in pages of pageSize
// generations, writing each page to w as it arrives. The written bytes
// are identical to Generations' at the same settled prefix.
func (c *Client) StreamGenerations(ctx context.Context, id string, pageSize int, canonical bool, w io.Writer) error {
	return c.streamCSV(ctx, c.generationsURL(id, canonical), pageSize, w)
}

// SearchReport fetches a finished search campaign's summary as raw
// canonical JSON, suitable for byte comparison against a single-process
// reference. Running campaigns return an error (the server answers 202).
func (c *Client) SearchReport(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/campaigns/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

func (c *Client) streamCSV(ctx context.Context, url string, pageSize int, w io.Writer) error {
	if pageSize <= 0 {
		pageSize = 256
	}
	sep := "?"
	if strings.Contains(url, "?") {
		sep = "&"
	}
	offset := 0
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s%soffset=%d&limit=%d", url, sep, offset, pageSize), nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			err := c.decodeError(resp)
			resp.Body.Close()
			return err
		}
		_, err = io.Copy(w, resp.Body)
		next := resp.Header.Get("X-Next-Offset")
		resp.Body.Close()
		if err != nil {
			return err
		}
		if next == "" {
			return nil
		}
		n, err := strconv.Atoi(next)
		if err != nil || n <= offset {
			return fmt.Errorf("campaignd: bad X-Next-Offset %q", next)
		}
		offset = n
	}
}

func (c *Client) fetchCSV(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}
