package campaignd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue"
	"interferometry/internal/toolchain"
)

// Search campaigns (DESIGN.md §13): a spec with kind "search" runs a
// seeded evolutionary optimization over the layout space instead of a
// flat sampling sweep. The service drives it as a dependent task graph:
// one driver goroutine per campaign derives each generation's genomes
// from the settled previous generation, pushes the population as one
// atomic barrier batch (internal/jobqueue.PushBarrierTenant), and waits
// for every individual to settle before breeding the next — generation
// N+1 is never admitted before N has fully left the queue. Individuals
// execute through the same lease/breaker/retry machinery as layout
// tasks, locally or on remote workers, so the trajectory is a pure
// function of the spec and byte-identical to core.RunSearch whatever
// the worker count, batching or failure schedule.

// searchRun is the generational state of a search campaign. All fields
// below the engine handles are guarded by the owning campaign's mu.
type searchRun struct {
	eng  *core.Search
	sink *core.SearchCheckpointSink // nil without a checkpoint root

	// restored is the checkpoint prefix loaded at admission, immutable
	// afterwards; resume cross-checks WAL generation records against it.
	restored []core.GenerationResult

	// gens is the settled prefix (starts as restored, driver appends).
	gens []core.GenerationResult
	// cur is the in-flight generation; nil between generations.
	cur *generationState
	// result is set when the trajectory finalizes.
	result *core.SearchResult
}

// generationState tracks one in-flight generation's observations as
// workers settle them.
type generationState struct {
	gen       int
	genomes   []toolchain.Genome
	obs       []core.Observation
	done      []bool
	remaining int
}

// newSearchCampaign admits a search spec: derives the search config,
// prepares the engine's shared state, and opens (or resumes) the
// generation checkpoint. The server pushes the first pending generation
// and starts the driver after journaling the admission.
func newSearchCampaign(parent context.Context, spec JobSpec, scale experiments.Scale, workers int, checkpointRoot string, cache toolchain.LayoutCache, faults *faultinject.Injector, now time.Time) (*campaign, error) {
	cfg, err := searchConfig(spec, scale)
	if err != nil {
		return nil, err
	}
	cfg.Campaign.LayoutCache = cache
	cfg.Campaign.Faults = faults
	id := spec.ID(scale)
	if checkpointRoot != "" {
		dir := filepath.Join(checkpointRoot, id)
		cfg.Campaign.Checkpoint = core.CheckpointConfig{Dir: dir}
		if _, statErr := os.Stat(filepath.Join(dir, core.SearchCheckpointFile)); statErr == nil {
			cfg.Campaign.Checkpoint.Resume = true
		}
	}

	eng, err := core.NewSearch(cfg, workers)
	if err != nil {
		return nil, err
	}
	run := &searchRun{eng: eng}
	if cfg.Campaign.Checkpoint.Dir != "" {
		run.sink, err = core.OpenSearchCheckpointSink(eng)
		if err != nil {
			return nil, fmt.Errorf("campaignd: search checkpoint for %s: %w", id, err)
		}
		run.restored = run.sink.Restored()
		run.gens = append([]core.GenerationResult(nil), run.restored...)
	}

	ctx, cancel := context.WithCancelCause(parent)
	stopTimer := context.CancelFunc(func() {})
	if spec.DeadlineMS > 0 {
		ctx, stopTimer = context.WithDeadline(ctx, now.Add(time.Duration(spec.DeadlineMS)*time.Millisecond))
	}
	pop := eng.Population()
	c := &campaign{
		id:        id,
		spec:      spec,
		runner:    eng.Runner(),
		search:    run,
		ctx:       ctx,
		cancel:    cancel,
		stopTimer: stopTimer,
		created:   now,
		state:     StateRunning,
		obs:       make([]core.Observation, pop),
		done:      make(map[int]bool, pop),
		attempts:  make(map[int]int),
		restored:  len(run.gens) * pop,
		completed: len(run.gens) * pop,
		remaining: (eng.Generations() - len(run.gens)) * pop,
		finished:  make(chan struct{}),
	}
	if len(run.gens) >= eng.Generations() {
		// Fully restored from the checkpoint: finalize without queueing
		// a single task, exactly like a fully-restored layout campaign.
		c.finishSearch(run.gens)
	}
	return c, nil
}

// snapshotLocked fills a Status's search fields. Callers hold c.mu.
func (r *searchRun) snapshotLocked(st *Status) {
	st.Kind = KindSearch
	st.Layouts = r.eng.Population()
	st.Generations = r.eng.Generations()
	st.Generation = len(r.gens)
	if r.result != nil {
		st.BestCPI = r.result.Best.Obs.CPI()
		st.TrajectoryHash = r.result.TrajectoryHash
		return
	}
	for k := range r.gens {
		b := r.gens[k].Best()
		if cpi := b.Obs.CPI(); st.BestCPI == 0 || cpi < st.BestCPI {
			st.BestCPI = cpi
		}
	}
}

// beginGeneration registers the in-flight generation and resets the
// per-individual attempt counters — only one generation's tasks are
// ever in the system, so the counters never collide across generations.
func (c *campaign) beginGeneration(gen int, genomes []toolchain.Genome) (*generationState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return nil, fmt.Errorf("campaignd: campaign %s is %s", c.id, c.state)
	}
	g := &generationState{
		gen:       gen,
		genomes:   genomes,
		obs:       make([]core.Observation, len(genomes)),
		done:      make([]bool, len(genomes)),
		remaining: len(genomes),
	}
	c.attempts = make(map[int]int)
	c.search.cur = g
	return g, nil
}

// completeSearch records one individual's observation. Idempotent like
// complete: a duplicate execution from an expired lease derives
// byte-identical results and only the first recording counts.
func (c *campaign) completeSearch(t task, o core.Observation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.search.cur
	if c.state != StateRunning || g == nil || g.gen != t.gen || g.done[t.layout] {
		return
	}
	g.done[t.layout] = true
	g.obs[t.layout] = o
	g.remaining--
	c.completed++
}

// failSearchIndividual records a permanently failed individual. Unlike
// a layout campaign's failure budget, a failed individual never aborts
// the search — it simply loses selection, exactly as in core.Search;
// a generation with no valid individual fails the campaign at Settle.
func (c *campaign) failSearchIndividual(t task, attempts int) {
	o := c.runner.FailedGenomeObservation(*t.genome, attempts)
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.search.cur
	if c.state != StateRunning || g == nil || g.gen != t.gen || g.done[t.layout] {
		return
	}
	g.done[t.layout] = true
	g.obs[t.layout] = o
	g.remaining--
	c.completed++
	c.failed++
}

// generationSettled reports whether every individual of the in-flight
// generation has an observation, and returns them if so.
func (c *campaign) generationSettled(g *generationState) ([]core.Observation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.search.cur != g || g.remaining > 0 {
		return nil, false
	}
	return g.obs, true
}

// putGeneration persists one settled generation and publishes it to
// status and the streaming export.
func (c *campaign) putGeneration(res core.GenerationResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.search.sink != nil {
		if err := c.search.sink.Put(res); err != nil {
			return err
		}
	}
	c.search.gens = append(c.search.gens, res)
	c.search.cur = nil
	return nil
}

// searchGenerations returns the settled generation prefix — available
// while the campaign still runs, which is what lets clients stream a
// search's trajectory as it settles. Settled generations are immutable.
func (c *campaign) searchGenerations() ([]core.GenerationResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.search == nil {
		return nil, false
	}
	return c.search.gens[:len(c.search.gens):len(c.search.gens)], true
}

// searchResult returns the finalized search result.
func (c *campaign) searchResult() (*core.SearchResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.search == nil {
		return nil, fmt.Errorf("campaignd: not a search campaign")
	}
	switch {
	case c.search.result != nil:
		return c.search.result, nil
	case c.state == StateRunning:
		return nil, errNotDone
	default:
		return nil, c.err
	}
}

// finishSearch finalizes the trajectory.
func (c *campaign) finishSearch(gens []core.GenerationResult) {
	res, err := c.search.eng.Finalize(gens)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateRunning {
		return
	}
	if err != nil {
		c.failLocked(err)
		return
	}
	c.search.result = res
	c.state = StateDone
	c.closeLocked()
	if c.onFinal != nil {
		c.onFinal(c.state)
	}
}

// admitSearch pushes the first pending generation atomically — a queue
// that cannot hold one population sheds the whole campaign with the
// same 429 a layout fan-out gets — and starts the campaign's driver.
// Caller is admit, which already journaled the submission.
func (s *Server) admitSearch(c *campaign) error {
	gens := c.search.gens
	gen := len(gens)
	var prev *core.GenerationResult
	if gen > 0 {
		prev = &gens[gen-1]
	}
	genomes, err := c.search.eng.Genomes(gen, prev)
	if err != nil {
		return err
	}
	g, err := c.beginGeneration(gen, genomes)
	if err != nil {
		return err
	}
	bar, err := s.queue.PushBarrierTenant(c.spec.Tenant, c.spec.Priority, searchTasks(c, g))
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.drivers++
	s.mu.Unlock()
	s.driverWG.Add(1)
	go s.searchDriver(c, g, bar, append([]core.GenerationResult(nil), gens...))
	return nil
}

// searchTasks fans one generation out into queue tasks. The genome
// pointers alias the generation state, which outlives every lease.
func searchTasks(c *campaign, g *generationState) []task {
	tasks := make([]task, len(g.genomes))
	for i := range g.genomes {
		tasks[i] = task{camp: c, layout: i, gen: g.gen, genome: &g.genomes[i]}
	}
	return tasks
}

// searchDriver runs one search campaign's generation loop: wait for the
// in-flight generation's barrier, settle it, checkpoint and journal it,
// breed and push the next. It exits when the trajectory finalizes, the
// campaign dies, or the queue stops admitting (drain).
func (s *Server) searchDriver(c *campaign, g *generationState, bar *jobqueue.Barrier, gens []core.GenerationResult) {
	defer func() {
		s.mu.Lock()
		s.drivers--
		s.mu.Unlock()
		s.driverWG.Done()
	}()
	eng := c.search.eng
	for {
		select {
		case <-bar.Done():
		case <-c.ctx.Done():
			c.abort(context.Cause(c.ctx))
			return
		}
		// Every task has left the system. Either all individuals settled
		// (completed or permanently failed), or the queue dropped some
		// mid-flight (Close during drain or kill) — then the generation
		// cannot settle and the campaign interrupts, to resume from the
		// last checkpointed generation on resubmission.
		observations, ok := c.generationSettled(g)
		if !ok {
			c.interrupt()
			return
		}
		res, err := eng.Settle(g.gen, g.genomes, observations)
		if err != nil {
			c.abort(err) // no valid individual survived the generation
			return
		}
		if err := c.putGeneration(res); err != nil {
			c.abort(fmt.Errorf("campaignd: search checkpoint: %w", err))
			return
		}
		// The checkpoint flushed before this journal record, so a
		// journaled generation is always recoverable.
		s.walGen(c.id, res.Gen, res.PopHash)
		gens = append(gens, res)

		gen := g.gen + 1
		if gen >= eng.Generations() {
			c.finishSearch(gens)
			return
		}
		genomes, err := eng.Genomes(gen, &gens[len(gens)-1])
		if err != nil {
			c.abort(err)
			return
		}
		if g, err = c.beginGeneration(gen, genomes); err != nil {
			return // campaign died between generations
		}
		if bar, err = s.pushGeneration(c, g); err != nil {
			if errors.Is(err, jobqueue.ErrClosed) {
				c.interrupt() // drain between generations
			} else {
				c.abort(err)
			}
			return
		}
	}
}

// pushGeneration admits one generation's tasks, retrying capacity and
// quota sheds with backoff: unlike a fresh submission, a mid-flight
// generation has already been paid for, so transient pressure from
// other tenants' leased work delays it rather than killing the search.
func (s *Server) pushGeneration(c *campaign, g *generationState) (*jobqueue.Barrier, error) {
	delay := 5 * time.Millisecond
	for {
		bar, err := s.queue.PushBarrierTenant(c.spec.Tenant, c.spec.Priority, searchTasks(c, g))
		if err == nil {
			return bar, nil
		}
		if !errors.Is(err, jobqueue.ErrFull) && !errors.Is(err, jobqueue.ErrTenantQuota) {
			return nil, err
		}
		select {
		case <-c.ctx.Done():
			return nil, context.Cause(c.ctx)
		case <-time.After(delay):
		}
		if delay < 500*time.Millisecond {
			delay *= 2
		}
	}
}

// walGen journals one settled generation (nil-safe).
func (s *Server) walGen(id string, gen int, popHash string) {
	if s.wal == nil {
		return
	}
	if err := s.wal.Gen(id, gen, popHash); err != nil {
		s.walErrs.Inc()
	}
}

// verifyResumedSearch cross-checks the WAL's generation records against
// the restored checkpoint. The generation checkpoint flushes before its
// WAL record is appended, so a checkpoint that is missing a journaled
// generation — or disagrees on its population hash — is corrupt, and
// resuming from it would silently fork the trajectory.
func verifyResumedSearch(c *campaign, gens map[int]string) error {
	if c.search == nil || len(gens) == 0 {
		return nil
	}
	restored := c.search.restored
	for gen, hash := range gens {
		if gen >= len(restored) {
			return fmt.Errorf("generation %d journaled but missing from the checkpoint (%d restored)", gen, len(restored))
		}
		if got := restored[gen].PopHash; got != hash {
			return fmt.Errorf("generation %d population hash %s does not match journaled %s", gen, got, hash)
		}
	}
	return nil
}

// runSearchTask executes one individual through the same breaker-
// guarded build and measure seams a layout task uses.
func (s *Server) runSearchTask(slot int, lease *jobqueue.Lease[task], c *campaign, t task) {
	stopBeat := s.heartbeat(lease)
	defer stopBeat()

	if s.build.Allow() != nil {
		s.deny(lease, s.build)
		return
	}
	var exe *toolchain.Executable
	start := s.now()
	err := core.Guard(func() error {
		var berr error
		exe, berr = c.runner.BuildGenome(*t.genome)
		return berr
	})
	s.build.Record(s.now().Sub(start), err)
	if err != nil {
		s.taskFailed(lease, c, t, fmt.Errorf("build: %w", err))
		return
	}

	if err := c.ctx.Err(); err != nil {
		c.abort(context.Cause(c.ctx))
		lease.Complete()
		return
	}

	if s.measure.Allow() != nil {
		s.deny(lease, s.measure)
		return
	}
	var o core.Observation
	start = s.now()
	err = core.Guard(func() error {
		var merr error
		o, merr = c.runner.MeasureGenome(slot, *t.genome, exe)
		return merr
	})
	s.measure.Record(s.now().Sub(start), err)
	if err != nil {
		s.taskFailed(lease, c, t, fmt.Errorf("measure: %w", err))
		return
	}

	c.completeSearch(t, core.CompletedObservation(o, c.attemptsOf(t.layout)+1))
	lease.Complete()
}
