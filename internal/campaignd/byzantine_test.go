package campaignd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/obs"
	"interferometry/internal/progen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// startNamedWorker launches one remote worker with an identity (and an
// optional tamperer) against the coordinator.
func startNamedWorker(t *testing.T, client *campaignd.Client, id string, tamper *faultinject.Liar) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &campaignd.Worker{
			Coordinator: client.Base,
			HTTP:        client.HTTP,
			ID:          id,
			Wait:        100 * time.Millisecond,
			Tamper:      tamper,
		}
		w.Run(ctx)
	}()
	stop = func() {
		cancel()
		wg.Wait()
	}
	t.Cleanup(stop)
	return stop
}

// waitQuarantined polls fleet health until all the given workers are
// quarantined.
func waitHealthQuarantined(t *testing.T, srv *campaignd.Server, workers ...string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		health := srv.WorkerHealth()
		all := true
		for _, id := range workers {
			if h, ok := health[id]; !ok || !h.Quarantined {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers %v never quarantined; health %+v", workers, health)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestByzantineShardedMatchesSingleProcess is the trust headline: 2 of
// 4 workers lie about every result — flipped counters, stale seeds,
// replays, bad and forged fingerprints — and the campaign still
// finishes byte-identical to a clean single-process run, provenance
// columns included. The liars end quarantined; the honest workers do
// not; and no requeued task is ever charged an attempt (the attempts
// column would differ otherwise).
func TestByzantineShardedMatchesSingleProcess(t *testing.T) {
	spec := testSpec(8)
	want := datasetCSV(t, cleanDataset(t, spec))

	// Audit everything: the forged-fingerprint lie is structurally valid
	// and only a re-execution can disown it before it merges.
	srv, client := startService(t, campaignd.Config{
		NoLocalWorkers: true,
		AuditRate:      1,
	})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Stage the fleet: liars first, honest workers only once every liar
	// is quarantined, so every lie targets a live campaign.
	liars := []string{"byz-liar0", "byz-liar1"}
	for i, id := range liars {
		startNamedWorker(t, client, id, faultinject.NewLiar(uint64(0xb12+i)))
	}
	waitHealthQuarantined(t, srv, liars...)
	honest := []string{"byz-w2", "byz-w3"}
	for _, id := range honest {
		startNamedWorker(t, client, id, nil)
	}

	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("byzantine campaign ended %s: %s", st.State, st.Error)
	}
	if st.Failed != 0 {
		t.Errorf("byzantine campaign failed %d layouts; rejected results must requeue uncharged", st.Failed)
	}
	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("byzantine dataset differs from single-process run:\n--- byzantine ---\n%s--- clean ---\n%s", got, want)
	}

	health := srv.WorkerHealth()
	for _, id := range liars {
		h := health[id]
		if !h.Quarantined {
			t.Errorf("liar %s not quarantined: %+v", id, h)
		}
		if h.Rejected == 0 {
			t.Errorf("liar %s has no rejected results: %+v", id, h)
		}
	}
	for _, id := range honest {
		h := health[id]
		if h.Quarantined {
			t.Errorf("honest worker %s quarantined: %+v", id, h)
		}
		if h.Rejected != 0 || h.AuditFailed != 0 {
			t.Errorf("honest worker %s blamed: %+v", id, h)
		}
		if h.Score != 1 {
			t.Errorf("honest worker %s score %v, want 1", id, h.Score)
		}
	}
}

// TestByzantineSearchMatchesSingleProcess runs the same staged fleet
// against an evolutionary search campaign: lying workers must not move
// a byte of the generations CSVs or the summary report.
func TestByzantineSearchMatchesSingleProcess(t *testing.T) {
	spec := searchSpec()
	wantProv, wantCanon, wantReport := searchReference(t, cleanSearch(t, spec))

	srv, client := startService(t, campaignd.Config{
		NoLocalWorkers: true,
		AuditRate:      1,
	})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	liars := []string{"byz-s-liar0", "byz-s-liar1"}
	for i, id := range liars {
		startNamedWorker(t, client, id, faultinject.NewLiar(uint64(0x5ea+i)))
	}
	waitHealthQuarantined(t, srv, liars...)
	startNamedWorker(t, client, "byz-s-w2", nil)
	startNamedWorker(t, client, "byz-s-w3", nil)

	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("byzantine search ended %s: %s", st.State, st.Error)
	}
	prov, canon, report := fetchSearch(t, client, st.ID)
	if !bytes.Equal(prov, wantProv) {
		t.Errorf("byzantine generations differ from single-process run:\n--- byzantine ---\n%s--- clean ---\n%s", prov, wantProv)
	}
	if !bytes.Equal(canon, wantCanon) {
		t.Errorf("byzantine canonical generations differ from single-process run:\n--- byzantine ---\n%s--- clean ---\n%s", canon, wantCanon)
	}
	if !bytes.Equal(report, wantReport) {
		t.Errorf("byzantine search report differs from single-process run:\n--- byzantine ---\n%s--- clean ---\n%s", report, wantReport)
	}
	for _, id := range liars {
		if h := srv.WorkerHealth()[id]; !h.Quarantined {
			t.Errorf("liar %s not quarantined: %+v", id, h)
		}
	}
}

// protoLease and protoComplete drive the worker protocol by hand, so a
// test can impersonate a worker and submit precisely crafted results.
type protoLeaseResp struct {
	LeaseID    string `json:"lease_id"`
	CampaignID string `json:"campaign_id"`
	Layout     int    `json:"layout"`
	Attempt    int    `json:"attempt"`
}

func protoPost(t *testing.T, client *campaignd.Client, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.HTTP.Post(client.Base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func protoLease(t *testing.T, client *campaignd.Client, worker string) (protoLeaseResp, int) {
	t.Helper()
	status, body := protoPost(t, client, "/worker/lease", map[string]any{"worker": worker, "wait_ms": 2000})
	var lr protoLeaseResp
	if status == http.StatusOK {
		if err := json.Unmarshal(body, &lr); err != nil {
			t.Fatal(err)
		}
	}
	return lr, status
}

// TestTrustProtocolMetricsGolden walks the whole trust state machine by
// hand — structural rejection, threshold quarantine, audit-caught
// forgery, lease refusal — in a strictly serial schedule, and pins the
// campaignd_attestation_*/campaignd_audit_*/campaignd_quarantine_*
// metrics byte for byte. The campaign still finishes byte-identical to
// the clean run once an honest worker takes over.
func TestTrustProtocolMetricsGolden(t *testing.T) {
	spec := testSpec(3)
	want := datasetCSV(t, cleanDataset(t, spec))

	metrics := obs.NewMetrics()
	srv, client := startService(t, campaignd.Config{
		NoLocalWorkers:      true,
		AuditRate:           1,
		QuarantineThreshold: 2,
		Obs:                 &obs.Observer{Metrics: metrics},
	})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// The test executes leased tasks honestly through its own runner —
	// exactly what a real worker derives from the leased spec.
	ps, ok := progen.ByName(spec.Benchmark)
	if !ok {
		t.Fatalf("unknown benchmark %s", spec.Benchmark)
	}
	prog, err := progen.Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := core.NewLayoutRunner(core.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    spec.Budget,
		Layouts:   spec.Layouts,
		Fidelity:  experiments.Small.Fidelity,
		BaseSeed:  0x1f2e3d4c,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	execute := func(layout int) core.ObsWire {
		exe, berr := runner.BuildLayout(layout)
		if berr != nil {
			t.Fatal(berr)
		}
		o, merr := runner.MeasureLayout(0, layout, exe)
		if merr != nil {
			t.Fatal(merr)
		}
		wire := o.Wire()
		wire.Fingerprint = wire.Attest(runner.AttestationKey())
		return wire
	}

	// 1. "forger" reports a lied result under a correctly recomputed
	// fingerprint: structurally valid, so only the audit re-execution
	// catches it — and an audit failure condemns immediately.
	lr, status := protoLease(t, client, "forger")
	if status != http.StatusOK {
		t.Fatalf("forger lease status %d", status)
	}
	forged := execute(lr.Layout)
	forged.Cycles ^= 1 << 17
	forged.Fingerprint = forged.Attest(runner.AttestationKey())
	status, body := protoPost(t, client, "/worker/complete",
		map[string]any{"lease_id": lr.LeaseID, "observation": forged})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("forged completion status %d (%s), want 422", status, body)
	}
	if _, status = protoLease(t, client, "forger"); status != http.StatusForbidden {
		t.Errorf("condemned forger leased again: status %d, want 403", status)
	}

	// 2. "fibber" fails the cheap structural check twice — threshold 2 —
	// and crosses into quarantine without any audit.
	for i := 0; i < 2; i++ {
		lr, status = protoLease(t, client, "fibber")
		if status != http.StatusOK {
			t.Fatalf("fibber lease %d status %d", i, status)
		}
		bad := execute(lr.Layout)
		bad.Fingerprint = "pia1:00000000000000000000000000000000"
		status, body = protoPost(t, client, "/worker/complete",
			map[string]any{"lease_id": lr.LeaseID, "observation": bad})
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("bad-fingerprint completion %d status %d (%s), want 422", i, status, body)
		}
	}
	if _, status = protoLease(t, client, "fibber"); status != http.StatusForbidden {
		t.Errorf("quarantined fibber leased again: status %d, want 403", status)
	}
	if n := len(srv.WorkerHealth()); n != 2 {
		t.Errorf("fleet health tracks %d workers, want 2", n)
	}

	// 3. An honest worker finishes the campaign — every completion
	// audited, every audit passing — and the bytes match the clean run:
	// none of the rejected results merged, none of the requeues charged
	// an attempt.
	startNamedWorker(t, client, "honest", nil)
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}
	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("dataset differs from single-process run:\n--- got ---\n%s--- clean ---\n%s", got, want)
	}

	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var trust strings.Builder
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "campaignd_attestation") ||
			strings.Contains(line, "campaignd_audit") ||
			strings.Contains(line, "campaignd_quarantine") {
			trust.WriteString(line)
			trust.WriteByte('\n')
		}
	}
	path := filepath.Join("testdata", "trust_metrics.golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(trust.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantProm, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if trust.String() != string(wantProm) {
		t.Errorf("trust metrics mismatch:\n--- got ---\n%s--- want ---\n%s", trust.String(), wantProm)
	}
}

// TestQuarantineReleaseUncharged pins the accounting half of the trust
// contract at the queue level through the service: a rejected result's
// task keeps attempt 1 when it is re-leased, because Release charged
// nothing.
func TestQuarantineReleaseUncharged(t *testing.T) {
	spec := testSpec(1)
	_, client := startService(t, campaignd.Config{NoLocalWorkers: true})
	ctx := context.Background()
	if _, err := client.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}

	lr, status := protoLease(t, client, "w-reject")
	if status != http.StatusOK {
		t.Fatalf("lease status %d", status)
	}
	if lr.Attempt != 0 {
		t.Fatalf("first lease attempt %d, want 0", lr.Attempt)
	}
	status, _ = protoPost(t, client, "/worker/complete",
		map[string]any{"lease_id": lr.LeaseID, "observation": core.ObsWire{Fingerprint: "garbage"}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("garbage completion status %d, want 422", status)
	}
	lr2, status := protoLease(t, client, "w-next")
	if status != http.StatusOK {
		t.Fatalf("re-lease status %d", status)
	}
	if lr2.Attempt != 0 {
		t.Errorf("re-leased attempt %d, want 0: the rejection must not charge the task", lr2.Attempt)
	}
	status, _ = protoPost(t, client, "/worker/complete",
		map[string]any{"lease_id": lr.LeaseID, "error": "stale"})
	if status != http.StatusGone {
		t.Errorf("stale lease completion status %d, want 410", status)
	}
}
