// Package campaignd is the long-running campaign job service: it accepts
// campaign specs over HTTP, fans each one out into per-layout tasks on a
// bounded priority queue, and drives the tasks through the core build and
// measure seams under worker leases, per-seam circuit breakers and
// seeded-backoff retries.
//
// The service adds scheduling, not meaning: every measurement is a pure
// function of the spec's seed tuple, so whatever the queue, the breakers
// or the fault injector do to the schedule — retries, lease expiries,
// duplicate executions, drains and resumes — the finished dataset is
// byte-identical to a clean single-process core.RunCampaign of the same
// spec. The chaos soak (Soak) proves exactly that against the live
// service.
package campaignd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue"
	"interferometry/internal/jobqueue/backoff"
	"interferometry/internal/jobqueue/wal"
	"interferometry/internal/obs"
	"interferometry/internal/toolchain"
)

// Submission errors.
var (
	// ErrDraining rejects submissions once a drain has begun (503).
	ErrDraining = errors.New("campaignd: draining, not accepting campaigns")
	// ErrOverloaded rejects submissions the queue cannot admit (429).
	ErrOverloaded = errors.New("campaignd: queue full")
	// ErrTenantOverQuota rejects submissions that would push one tenant
	// past its quota while the service still has room for others (429).
	ErrTenantOverQuota = errors.New("campaignd: tenant over quota")
)

// errKilled is the cancel cause of a hard stop (Kill).
var errKilled = errors.New("campaignd: killed")

// Config parameterizes a Server.
type Config struct {
	// Scale supplies per-spec defaults (layouts, budget, fidelity).
	// The zero Scale means experiments.Small.
	Scale experiments.Scale
	// Workers is the task worker pool size. Zero or negative means 1.
	Workers int
	// NoLocalWorkers runs the server as a pure coordinator: Start
	// launches no local task workers, and every layout is executed by
	// remote campaignd worker processes pulling tasks from the
	// /worker/* endpoints (DESIGN.md §10). Workers still sizes each
	// campaign's runner slots for any mixed local execution.
	NoLocalWorkers bool
	// QueueCapacity bounds tasks in the system (queued plus leased);
	// admission control sheds whole campaigns beyond it. Zero means 256.
	QueueCapacity int
	// Lease is how long a task stays owned without a heartbeat before it
	// is reaped and requeued. Zero means 30s.
	Lease time.Duration
	// HeartbeatEvery is the worker heartbeat interval. Zero means a
	// third of the lease; negative disables heartbeats (tests use this
	// to force lease expiry under a live worker).
	HeartbeatEvery time.Duration
	// MaxAttempts bounds executions per layout. Zero means 3.
	MaxAttempts int
	// Backoff spaces retries of a failed task. The jitter is seeded by
	// (campaign seed, layout), so a replayed campaign backs off by
	// identical amounts. The zero policy retries immediately.
	Backoff backoff.Policy
	// Breaker configures both per-seam circuit breakers. Its Now and
	// OnTransition fields are ignored (the server wires its own).
	Breaker jobqueue.BreakerConfig
	// CheckpointRoot, when set, checkpoints every campaign under
	// <root>/<campaign-id>/ and resumes from an existing checkpoint on
	// resubmission. Empty disables checkpointing.
	CheckpointRoot string
	// WALDir, when set, makes admissions durable: every acknowledged
	// submission, task state transition and finalization is fsynced to
	// <dir>/campaignd.wal before the client sees it, and a restarted
	// server replays the log, reconciles it with the checkpoint
	// directories and resumes unfinished campaigns automatically. Empty
	// disables the WAL (a crash then loses in-flight campaigns, though
	// checkpoints still make resubmission a resume).
	WALDir string
	// MaxQueuedPerTenant bounds each tenant's tasks in the system
	// (queued plus leased); a submission that would exceed it is shed
	// with ErrTenantOverQuota (429). Zero means unlimited.
	MaxQueuedPerTenant int
	// TenantQuotas overrides MaxQueuedPerTenant per tenant; a zero or
	// negative entry exempts that tenant from the uniform bound.
	TenantQuotas map[string]int
	// MaxCampaignsPerTenant bounds how many of a tenant's campaigns may
	// be running at once; beyond it submissions shed with
	// ErrTenantOverQuota (429). Zero means unlimited.
	MaxCampaignsPerTenant int
	// FairQuantum is the deficit-round-robin quantum: how many tasks one
	// tenant may dispatch per scheduling turn before the queue moves to
	// the next tenant in its priority class. Zero means 1.
	FairQuantum int
	// AuditRate is the fraction of verified remote results the
	// coordinator re-executes through its own runner and compares byte
	// for byte (DESIGN.md §14). The sampler is seeded per (campaign,
	// task, attempt), so which completions get audited is deterministic.
	// Zero disables auditing; 1 audits everything. A mismatch condemns
	// the reporting worker.
	AuditRate float64
	// QuarantineThreshold condemns a worker once this many of its
	// recent results (a sliding window of 32) were rejected at
	// verification. Zero means 3. Audit failures condemn immediately.
	QuarantineThreshold int
	// LayoutCache optionally backs every campaign's build seam with a
	// shared content-addressed artifact store (internal/artifactcache),
	// so resubmitted, resumed and extended campaigns skip redundant
	// Reorder+Link work. Nil builds every layout from scratch.
	LayoutCache toolchain.LayoutCache
	// Faults optionally injects faults into every campaign's build and
	// measure seams — the chaos soak's hook. Nil runs clean.
	Faults *faultinject.Injector
	// Obs observes the service; nil runs unobserved.
	Obs *obs.Observer
	// Now is the clock. Nil means time.Now.
	Now func() time.Time
}

func (c Config) scale() experiments.Scale {
	if c.Scale.Name == "" {
		return experiments.Small
	}
	return c.Scale
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

func (c Config) queueCapacity() int {
	if c.QueueCapacity <= 0 {
		return 256
	}
	return c.QueueCapacity
}

func (c Config) lease() time.Duration {
	if c.Lease <= 0 {
		return 30 * time.Second
	}
	return c.Lease
}

func (c Config) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery < 0 {
		return 0 // disabled
	}
	if c.HeartbeatEvery == 0 {
		return c.lease() / 3
	}
	return c.HeartbeatEvery
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

func (c Config) quarantineThreshold() int {
	if c.QuarantineThreshold <= 0 {
		return 3
	}
	return c.QuarantineThreshold
}

// task is one queue entry: a single layout of one campaign, or — when
// genome is set — one individual of a search campaign's generation
// (layout is then the index within the generation).
type task struct {
	camp   *campaign
	layout int
	gen    int
	genome *toolchain.Genome
}

// Server is the campaign job service.
type Server struct {
	cfg       Config
	queue     *jobqueue.Queue[task]
	remote    *jobqueue.Registry[task]
	build     *jobqueue.Breaker
	measure   *jobqueue.Breaker
	wal       *wal.Log
	shed      *obs.Counter
	writeErrs *obs.Counter
	walErrs   *obs.Counter

	// Trust & verification instruments (DESIGN.md §14).
	attRejects *obs.Counter
	audits     *obs.Counter
	auditFails *obs.Counter
	auditErrs  *obs.Counter
	condemned  *obs.Counter
	refusals   *obs.Counter
	quarGauge  *obs.Gauge
	// auditMu serializes spot-audit re-executions: every campaign
	// reserves exactly one extra runner slot for the coordinator's
	// audits, so they run one at a time.
	auditMu sync.Mutex

	baseCtx context.Context
	stop    context.CancelCauseFunc
	wg      sync.WaitGroup
	// driverWG tracks search campaign drivers, which outlive individual
	// tasks: a drain seals the queue and waits for them so an in-flight
	// generation settles instead of being dropped mid-barrier.
	driverWG sync.WaitGroup

	mu        sync.Mutex
	drivers   int // live search drivers (guards the Seal-on-drain path)
	campaigns map[string]*campaign
	// admitting reserves campaign IDs whose admission is in flight (the
	// expensive build happens outside the lock): a concurrent duplicate
	// submission waits on the channel and then returns the winner's
	// status instead of racing a second checkpoint resume.
	admitting map[string]chan struct{}
	draining  bool

	drainOnce sync.Once
	done      chan struct{}
}

// WALFile is the write-ahead log's name inside Config.WALDir.
const WALFile = "campaignd.wal"

// New builds a server; Start launches its workers. With Config.WALDir
// set, New replays the log and re-admits every campaign that was
// acknowledged but not finished — their tasks are queued (resuming from
// checkpoints where those exist) before the first request is served.
func New(cfg Config) (*Server, error) {
	brCfg := cfg.Breaker
	brCfg.Now = cfg.Now
	buildCfg, measureCfg := brCfg, brCfg
	buildCfg.OnTransition = jobqueue.ObserveBreaker(cfg.Obs, "campaignd", "build")
	measureCfg.OnTransition = jobqueue.ObserveBreaker(cfg.Obs, "campaignd", "measure")
	ctx, stop := context.WithCancelCause(context.Background())
	s := &Server{
		cfg: cfg,
		queue: jobqueue.New[task](jobqueue.Config{
			Capacity:      cfg.queueCapacity(),
			MaxPerTenant:  cfg.MaxQueuedPerTenant,
			TenantQuotas:  cfg.TenantQuotas,
			Quantum:       cfg.FairQuantum,
			Lease:         cfg.lease(),
			Now:           cfg.Now,
			Metrics:       jobqueue.ObserveMetrics(cfg.Obs, "campaignd"),
			TenantMetrics: tenantMetricsHook(cfg.Obs),
		}),
		remote:     jobqueue.NewRegistry[task](),
		build:      jobqueue.NewBreaker(buildCfg),
		measure:    jobqueue.NewBreaker(measureCfg),
		shed:       obsCounter(cfg.Obs, "campaignd_shed_total", "submissions rejected by admission control (429)"),
		writeErrs:  obsCounter(cfg.Obs, "campaignd_http_write_errors_total", "HTTP response bodies that failed to encode or send"),
		walErrs:    obsCounter(cfg.Obs, "campaignd_wal_append_errors_total", "WAL appends that failed (state stays replayable from the last good record)"),
		attRejects: obsCounter(cfg.Obs, "campaignd_attestation_rejects_total", "remote results refused at verification (422): bad fingerprint or wrong seed"),
		audits:     obsCounter(cfg.Obs, "campaignd_audit_total", "remote results spot-audited by coordinator re-execution"),
		auditFails: obsCounter(cfg.Obs, "campaignd_audit_failures_total", "spot audits whose re-execution disowned the reported bytes"),
		auditErrs:  obsCounter(cfg.Obs, "campaignd_audit_errors_total", "spot audits the coordinator could not complete (result accepted unaudited)"),
		condemned:  obsCounter(cfg.Obs, "campaignd_quarantine_condemned_total", "workers condemned to quarantine"),
		refusals:   obsCounter(cfg.Obs, "campaignd_quarantine_lease_refusals_total", "lease requests refused because the worker is quarantined (403)"),
		quarGauge:  obsGauge(cfg.Obs, "campaignd_quarantine_workers", "workers currently quarantined"),
		baseCtx:    ctx,
		stop:       stop,
		campaigns:  make(map[string]*campaign),
		admitting:  make(map[string]chan struct{}),
		done:       make(chan struct{}),
	}
	s.remote.SetPolicy(jobqueue.RegistryPolicy{QuarantineAfter: cfg.quarantineThreshold()})
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaignd: wal dir: %w", err)
		}
		log, states, err := wal.Open(wal.Config{
			Path: filepath.Join(cfg.WALDir, WALFile),
			Obs:  cfg.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("campaignd: %w", err)
		}
		s.wal = log
		for _, st := range states {
			if !st.Live() {
				continue // finalized; dropped at the next compaction
			}
			if err := s.resume(st); err != nil {
				s.Kill() // tears down any drivers already started
				return nil, fmt.Errorf("campaignd: resume %s: %w", st.ID, err)
			}
		}
	}
	return s, nil
}

// tenantMetricsHook resolves per-tenant queue gauges as labeled members
// of the campaignd_tenant_* families.
func tenantMetricsHook(o *obs.Observer) func(string) *jobqueue.TenantMetrics {
	if o == nil {
		return nil
	}
	return func(tenant string) *jobqueue.TenantMetrics {
		return &jobqueue.TenantMetrics{
			Depth:  o.Gauge(fmt.Sprintf("campaignd_tenant_queue_depth{tenant=%q}", tenant), "queued tasks per tenant"),
			Leased: o.Gauge(fmt.Sprintf("campaignd_tenant_leases_active{tenant=%q}", tenant), "leased tasks per tenant"),
		}
	}
}

// shedTenant counts one shed submission against a tenant's labeled
// counter (and the global one).
func (s *Server) shedTenant(tenant string) {
	s.shed.Inc()
	if o := s.cfg.Obs; o != nil {
		o.Counter(fmt.Sprintf("campaignd_tenant_shed_total{tenant=%q}", tenant),
			"submissions rejected by admission control per tenant (429)").Inc()
	}
}

// resume re-admits one live WAL campaign at startup. The submit record
// is already in the log, so the admission is not re-journaled; task and
// final records append as the resumed work progresses.
func (s *Server) resume(st *wal.CampaignState) error {
	var spec JobSpec
	if err := json.Unmarshal(st.Spec, &spec); err != nil {
		return fmt.Errorf("bad spec in WAL: %w", err)
	}
	status, err := s.admit(spec, false)
	if err != nil {
		return err
	}
	if spec.IsSearch() && s.cfg.CheckpointRoot != "" {
		if c, ok := s.lookup(status.ID); ok {
			if err := verifyResumedSearch(c, st.Gens); err != nil {
				return err
			}
		}
	}
	return nil
}

func obsCounter(o *obs.Observer, name, help string) *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Counter(name, help)
}

func obsGauge(o *obs.Observer, name, help string) *obs.Gauge {
	if o == nil {
		return nil
	}
	return o.Gauge(name, help)
}

func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

// WorkerHealth snapshots every remote worker's health record:
// accepted/rejected/audit-failed counters, the sliding-window score and
// the quarantine bit. Workers that never identified themselves are
// absent.
func (s *Server) WorkerHealth() map[string]jobqueue.WorkerHealth {
	return s.remote.Workers()
}

// Start launches the worker pool (a no-op for a pure coordinator).
func (s *Server) Start() {
	if s.cfg.NoLocalWorkers {
		return
	}
	for w := 0; w < s.cfg.workers(); w++ {
		s.wg.Add(1)
		go func(slot int) {
			defer s.wg.Done()
			s.worker(slot)
		}(w)
	}
}

// Submit admits one campaign: validates the spec, prepares (or resumes)
// its runner and checkpoint, journals the admission, and pushes every
// pending layout task as one atomic batch. A spec identical to a live
// or finished campaign returns that campaign instead of duplicating
// work. ErrOverloaded and ErrTenantOverQuota mean the queue cannot hold
// the fan-out — retry later (429 + Retry-After).
func (s *Server) Submit(spec JobSpec) (Status, error) {
	return s.admit(spec, true)
}

// admit is the single admission path; record distinguishes a fresh
// submission (journaled, quota-checked) from a startup resume of a
// campaign the WAL already holds.
func (s *Server) admit(spec JobSpec, record bool) (Status, error) {
	if err := spec.validate(); err != nil {
		return Status{}, err
	}
	id := spec.ID(s.cfg.scale())

	s.mu.Lock()
	for {
		if s.draining {
			s.mu.Unlock()
			return Status{}, ErrDraining
		}
		if c, ok := s.campaigns[id]; ok {
			// Live (or draining, or finished) campaign with this exact
			// identity: return its status — never race a duplicate
			// checkpoint resume against it.
			s.mu.Unlock()
			return c.snapshot(), nil
		}
		ch, ok := s.admitting[id]
		if !ok {
			break
		}
		// Another submission of this spec is mid-admission; wait for it
		// and take its result from the campaigns map.
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	if max := s.cfg.MaxCampaignsPerTenant; record && max > 0 && s.runningCampaignsLocked(spec.Tenant) >= max {
		s.mu.Unlock()
		s.shedTenant(spec.Tenant)
		return Status{}, ErrTenantOverQuota
	}
	ch := make(chan struct{})
	s.admitting[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.admitting, id)
		s.mu.Unlock()
		close(ch)
	}()

	// Build the campaign outside the lock: trace interpretation and the
	// shared compile are real work. The admitting reservation keeps
	// duplicates out, so this build is the only one for this ID. The +1
	// reserves one runner slot (the last) for the coordinator's
	// spot-audit re-executions, which must never contend with the local
	// pool's slots.
	c, pending, err := newCampaign(s.baseCtx, spec, s.cfg.scale(), s.cfg.workers()+1, s.cfg.CheckpointRoot, s.cfg.LayoutCache, s.cfg.Faults, s.now())
	if err != nil {
		return Status{}, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		c.abort(ErrDraining)
		return Status{}, ErrDraining
	}
	s.campaigns[id] = c
	s.mu.Unlock()

	// Write-ahead: the admission is durable before any task runs and
	// before the client sees its 202. A crash after this point resumes
	// the campaign; a crash before it leaves nothing acknowledged.
	if record && s.wal != nil {
		specJSON, jerr := json.Marshal(spec)
		if jerr == nil {
			jerr = s.wal.Submit(id, spec.Tenant, spec.Priority, specJSON)
		}
		if jerr != nil {
			s.mu.Lock()
			delete(s.campaigns, id)
			s.mu.Unlock()
			c.abort(jerr)
			return Status{}, fmt.Errorf("campaignd: journal admission: %w", jerr)
		}
	}
	s.wireJournal(c)

	// A campaign fully restored from its checkpoint finalized inside
	// newCampaign, before the journal hooks existed: record the final
	// now so the WAL converges with what the client will see.
	if st := c.snapshot(); st.State != StateRunning {
		s.walFinal(id, st.State)
		return st, nil
	}

	if c.search != nil {
		// Search fan-out: push the first pending generation atomically
		// and hand the rest of the trajectory to the campaign's driver.
		if err := s.admitSearch(c); err != nil {
			s.mu.Lock()
			delete(s.campaigns, id)
			s.mu.Unlock()
			c.abort(err)
			switch {
			case errors.Is(err, jobqueue.ErrTenantQuota):
				s.shedTenant(spec.Tenant)
				return Status{}, ErrTenantOverQuota
			case errors.Is(err, jobqueue.ErrFull):
				s.shedTenant(spec.Tenant)
				return Status{}, ErrOverloaded
			case errors.Is(err, jobqueue.ErrClosed):
				return Status{}, ErrDraining
			}
			return Status{}, err
		}
		return c.snapshot(), nil
	}

	tasks := make([]task, len(pending))
	for n, i := range pending {
		tasks[n] = task{camp: c, layout: i}
	}
	if err := s.queue.PushBatchTenant(spec.Tenant, spec.Priority, tasks); err != nil {
		s.mu.Lock()
		delete(s.campaigns, id)
		s.mu.Unlock()
		c.abort(err) // journals the final, voiding the submit record
		switch {
		case errors.Is(err, jobqueue.ErrTenantQuota):
			s.shedTenant(spec.Tenant)
			return Status{}, ErrTenantOverQuota
		case errors.Is(err, jobqueue.ErrFull):
			s.shedTenant(spec.Tenant)
			return Status{}, ErrOverloaded
		case errors.Is(err, jobqueue.ErrClosed):
			return Status{}, ErrDraining
		}
		return Status{}, err
	}
	return c.snapshot(), nil
}

// runningCampaignsLocked counts a tenant's campaigns still running.
// Callers hold s.mu; campaign locks nest inside it.
func (s *Server) runningCampaignsLocked(tenant string) int {
	n := 0
	for _, c := range s.campaigns {
		if c.spec.Tenant != tenant {
			continue
		}
		c.mu.Lock()
		if c.state == StateRunning {
			n++
		}
		c.mu.Unlock()
	}
	return n
}

// wireJournal points the campaign's terminal-state hooks at the WAL.
// Append failures are counted, not fatal: the log stays replayable from
// its last good record, and determinism makes re-running a lost task
// free.
func (s *Server) wireJournal(c *campaign) {
	if s.wal == nil {
		return
	}
	id := c.id
	c.onTask = func(layout int, state string) {
		if err := s.wal.Task(id, layout, state); err != nil {
			s.walErrs.Inc()
		}
	}
	c.onFinal = func(state string) { s.walFinal(id, state) }
}

// walFinal journals a campaign's terminal state (nil-safe).
func (s *Server) walFinal(id, state string) {
	if s.wal == nil {
		return
	}
	if err := s.wal.Final(id, state); err != nil {
		s.walErrs.Inc()
	}
}

// RetryAfter estimates when a shed submission is worth retrying: one
// lease duration is when currently-leased work must have completed or
// been reaped.
func (s *Server) RetryAfter() time.Duration { return s.cfg.lease() }

// lookup returns a campaign by ID.
func (s *Server) lookup(id string) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// Drain performs the graceful shutdown sequence: stop admission, drop
// queued tasks (the checkpoint has everything completed; a resubmission
// resumes the rest), let workers finish the tasks they hold, flush every
// checkpoint, then release Done. Idempotent and safe from any goroutine,
// including a signal handler's.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		sealFirst := s.drivers > 0
		s.mu.Unlock()

		if sealFirst {
			// Search campaigns have a generation in flight: Close now
			// would drop its queued siblings mid-barrier. Seal instead —
			// admission stops, dispatch continues until the system is
			// empty — so every driver settles (and checkpoints) its
			// in-flight generation, refuses the next one, and exits. The
			// grace is bounded: if nothing is executing the sealed tasks
			// (a pure coordinator whose remote workers died), fall
			// through to Close, which drops them and interrupts the
			// drivers — the generation checkpoint resumes the rest.
			s.queue.Seal()
			settled := make(chan struct{})
			go func() {
				s.driverWG.Wait()
				close(settled)
			}()
			select {
			case <-settled:
			case <-time.After(2 * s.cfg.lease()):
			}
		}
		s.queue.Close() // Pops return ErrClosed; leased tasks stay valid
		s.wg.Wait()     // workers finish in-flight tasks and exit
		s.driverWG.Wait()

		s.mu.Lock()
		camps := make([]*campaign, 0, len(s.campaigns))
		for _, c := range s.campaigns {
			camps = append(camps, c)
		}
		s.mu.Unlock()
		for _, c := range camps {
			c.interrupt() // no-op on finished campaigns; flushes the rest
		}
		if s.wal != nil {
			// Interrupted campaigns stay live in the log (a restart
			// resumes them); compaction drops the finalized ones.
			if err := s.wal.Compact(); err != nil {
				s.walErrs.Inc()
			}
			s.wal.Close()
		}
		s.stop(ErrDraining)
		close(s.done)
	})
}

// Kill hard-stops the coordinator: no checkpoint-flushing interrupt
// pass, no WAL finalization, no graceful anything — the in-process
// analog of kill -9, which the chaos soak's coordinator-kill rounds use
// to prove a restart on the same WAL dir resumes to byte-identical
// results. The WAL is closed first, so in-flight task settlements
// cannot journal state the "dead" coordinator would not have persisted;
// workers then stop at their next context check.
func (s *Server) Kill() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		if s.wal != nil {
			s.wal.Close()
		}
		s.stop(errKilled)
		s.queue.Close()
		s.wg.Wait()
		s.driverWG.Wait()
		close(s.done)
	})
}

// Done is closed when a drain has fully finished.
func (s *Server) Done() <-chan struct{} { return s.done }

// DrainOnSignal starts the graceful drain when one of sigs arrives
// (default SIGTERM and SIGINT). It returns a stop function that
// uninstalls the handler; wait on Done for the drain itself.
func (s *Server) DrainOnSignal(sigs ...os.Signal) (stop func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{syscall.SIGTERM, os.Interrupt}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		if _, ok := <-ch; ok {
			s.Drain()
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker is one pool goroutine: lease a task, run it through the seams,
// report the outcome to its campaign. The slot index doubles as the
// measurement harness slot, so concurrent measures never share state.
func (s *Server) worker(slot int) {
	for {
		lease, err := s.queue.Pop(s.baseCtx)
		if err != nil {
			return // closed or stopped
		}
		s.runTask(slot, lease)
	}
}

// runTask executes one leased task. Every exit path settles the lease:
// Complete when the task is finished for good (success, permanent
// failure, dead campaign), Requeue when it should run again (seam
// failure with attempts left, breaker denial).
func (s *Server) runTask(slot int, lease *jobqueue.Lease[task]) {
	t := lease.Payload()
	c := t.camp

	// Deadline propagation: the campaign context (request deadline,
	// drain, failure-budget abort) is checked before every stage; a dead
	// campaign's tasks drain without executing.
	if err := c.ctx.Err(); err != nil {
		c.abort(context.Cause(c.ctx))
		lease.Complete()
		return
	}

	if t.genome != nil {
		s.runSearchTask(slot, lease, c, t)
		return
	}

	stopBeat := s.heartbeat(lease)
	defer stopBeat()

	// Build seam, behind its breaker.
	if s.build.Allow() != nil {
		s.deny(lease, s.build)
		return
	}
	var exe *toolchain.Executable
	start := s.now()
	err := core.Guard(func() error {
		var berr error
		exe, berr = c.runner.BuildLayout(t.layout)
		return berr
	})
	s.build.Record(s.now().Sub(start), err)
	if err != nil {
		s.taskFailed(lease, c, t, fmt.Errorf("build: %w", err))
		return
	}

	if err := c.ctx.Err(); err != nil {
		c.abort(context.Cause(c.ctx))
		lease.Complete()
		return
	}

	// Measure seam, behind its breaker.
	if s.measure.Allow() != nil {
		s.deny(lease, s.measure)
		return
	}
	var o core.Observation
	start = s.now()
	err = core.Guard(func() error {
		var merr error
		o, merr = c.runner.MeasureLayout(slot, t.layout, exe)
		return merr
	})
	s.measure.Record(s.now().Sub(start), err)
	if err != nil {
		s.taskFailed(lease, c, t, fmt.Errorf("measure: %w", err))
		return
	}

	c.complete(t.layout, core.CompletedObservation(o, c.attemptsOf(t.layout)+1))
	// ErrLeaseLost here means we overran the lease and the task was
	// requeued: the result above still counted (complete is idempotent
	// and a duplicate execution derives identical bytes), and the
	// re-execution will find the layout done and settle the residue.
	lease.Complete()
}

// deny parks a breaker-denied task until the breaker's window may admit
// a probe. No execution happened, so no retry attempt is consumed; the
// jitter spreads reprobes of distinct tasks.
func (s *Server) deny(lease *jobqueue.Lease[task], b *jobqueue.Breaker) {
	delay := b.RetryIn()
	if delay <= 0 {
		delay = 10 * time.Millisecond
	}
	lease.Requeue(s.now().Add(delay))
}

// taskFailed settles a failed execution: requeue with seeded backoff
// while attempts remain, otherwise record the permanent failure.
func (s *Server) taskFailed(lease *jobqueue.Lease[task], c *campaign, t task, err error) {
	n := c.recordFailure(t.layout)
	if n < s.cfg.maxAttempts() {
		key := uint64(t.layout)
		if t.genome != nil {
			// Genome retries back off keyed by the fingerprint, matching
			// the in-process search's retry stream.
			key = t.genome.Fingerprint()
		}
		delay := s.cfg.Backoff.Delay(n, c.spec.effectiveSeed(), key)
		lease.Requeue(s.now().Add(delay))
		return
	}
	if t.genome != nil {
		c.failSearchIndividual(t, n)
	} else {
		c.failLayout(t.layout, n, err)
	}
	lease.Complete()
}

// heartbeat keeps the lease alive while the seams run; the returned stop
// must be called when the task settles. A lost lease just stops the
// beat — the run finishes and its settlement discovers ErrLeaseLost.
func (s *Server) heartbeat(lease *jobqueue.Lease[task]) (stop func()) {
	every := s.cfg.heartbeatEvery()
	if every <= 0 {
		return func() {}
	}
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
				if lease.Heartbeat() != nil {
					return
				}
			}
		}
	}()
	return func() {
		close(stopCh)
		wg.Wait()
	}
}
