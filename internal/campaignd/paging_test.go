package campaignd_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"

	"interferometry/internal/campaignd"
)

// fetchPage GETs one paged CSV request and returns the body plus the
// paging headers.
func fetchPage(t *testing.T, url string) (body []byte, totalRows, nextOffset string, status int) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err = io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, res.Header.Get("X-Total-Rows"), res.Header.Get("X-Next-Offset"), res.StatusCode
}

// TestResultPagingOvershoot: a page request with offset at or past the
// final row must answer 200 with an empty body — no header row, no
// X-Next-Offset — and still advertise the true X-Total-Rows, so a
// client that overshoots (or polls past the end) appends nothing and
// its concatenated pages stay byte-identical to the blob.
func TestResultPagingOvershoot(t *testing.T) {
	const layouts = 3
	spec := testSpec(layouts)
	_, client := startService(t, campaignd.Config{Workers: 2})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}

	for _, endpoint := range []string{"result", "measurements"} {
		blob, err := client.Measurements(ctx, st.ID)
		if endpoint == "result" {
			blob, err = client.Result(ctx, st.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
		header := blob[:bytes.IndexByte(blob, '\n')+1]
		for _, tc := range []struct {
			name  string
			query string
		}{
			{"offset at final row", fmt.Sprintf("?offset=%d&limit=2", layouts)},
			{"offset past final row", fmt.Sprintf("?offset=%d&limit=2", layouts+4)},
			{"offset past final row, whole", fmt.Sprintf("?offset=%d", layouts+4)},
		} {
			t.Run(endpoint+"/"+tc.name, func(t *testing.T) {
				url := client.Base + "/campaigns/" + st.ID + "/" + endpoint + tc.query
				body, total, next, status := fetchPage(t, url)
				if status != http.StatusOK {
					t.Fatalf("status = %d, want 200", status)
				}
				if total != fmt.Sprint(layouts) {
					t.Errorf("X-Total-Rows = %q, want %d", total, layouts)
				}
				if next != "" {
					t.Errorf("overshoot page advertised X-Next-Offset %q", next)
				}
				if len(body) != 0 {
					t.Errorf("overshoot page body = %d bytes, want empty (got %q)", len(body), body)
				}
				if bytes.HasPrefix(body, header) {
					t.Errorf("overshoot page repeated the CSV header")
				}
			})
		}

		// A client that pages to the end and then overshoots must still
		// hold exactly the blob.
		var stream bytes.Buffer
		streamFn := client.StreamMeasurements
		if endpoint == "result" {
			streamFn = client.StreamResult
		}
		if err := streamFn(ctx, st.ID, 2, &stream); err != nil {
			t.Fatal(err)
		}
		overshoot, _, _, _ := fetchPage(t, client.Base+"/campaigns/"+st.ID+"/"+endpoint+fmt.Sprintf("?offset=%d&limit=2", layouts))
		stream.Write(overshoot)
		if !bytes.Equal(stream.Bytes(), blob) {
			t.Errorf("%s: streamed pages + overshoot differ from blob (%d vs %d bytes)", endpoint, stream.Len(), len(blob))
		}
	}
}

// TestGenerationsPagingOvershoot is the overshoot pin for the
// generations endpoint, which pages in generation units and serves
// mid-run — so overshooting (polling for generations that have not
// settled yet) is its normal client behavior, not an error.
func TestGenerationsPagingOvershoot(t *testing.T) {
	spec := testSpec(0)
	spec.Kind = campaignd.KindSearch
	spec.Search = &campaignd.SearchSpec{Population: 3, Generations: 2}
	_, client := startService(t, campaignd.Config{Workers: 2})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}
	blob, err := client.Generations(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	const gens = 2
	for _, tc := range []struct {
		name  string
		query string
	}{
		{"offset at final generation", fmt.Sprintf("?canonical=1&offset=%d&limit=1", gens)},
		{"offset past final generation", fmt.Sprintf("?canonical=1&offset=%d&limit=1", gens+3)},
		{"offset past final generation, whole", fmt.Sprintf("?canonical=1&offset=%d", gens+3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			url := client.Base + "/campaigns/" + st.ID + "/generations" + tc.query
			body, total, next, status := fetchPage(t, url)
			if status != http.StatusOK {
				t.Fatalf("status = %d, want 200", status)
			}
			if total != fmt.Sprint(gens) {
				t.Errorf("X-Total-Rows = %q, want %d", total, gens)
			}
			if next != "" {
				t.Errorf("overshoot page advertised X-Next-Offset %q", next)
			}
			if len(body) != 0 {
				t.Errorf("overshoot page body = %d bytes, want empty (got %q)", len(body), body)
			}
		})
	}

	// Paged-to-the-end plus an overshoot poll must still equal the blob.
	var stream bytes.Buffer
	if err := client.StreamGenerations(ctx, st.ID, 1, true, &stream); err != nil {
		t.Fatal(err)
	}
	overshoot, _, _, _ := fetchPage(t, client.Base+"/campaigns/"+st.ID+"/generations"+fmt.Sprintf("?canonical=1&offset=%d&limit=1", gens))
	stream.Write(overshoot)
	if !bytes.Equal(stream.Bytes(), blob) {
		t.Errorf("streamed generations + overshoot differ from blob (%d vs %d bytes)", stream.Len(), len(blob))
	}
}

// TestGenerationsPagingBeforeFirstSettle: the generations endpoint
// serves mid-run, so a tailing client's very first poll — offset 0
// while zero generations have settled — is also "at the final row" and
// must return a byte-empty body. A header row here would be appended
// again by the poll that sees real rows, corrupting the client's
// accumulated CSV. A coordinator with no workers pins total at 0.
func TestGenerationsPagingBeforeFirstSettle(t *testing.T) {
	spec := testSpec(0)
	spec.Kind = campaignd.KindSearch
	spec.Search = &campaignd.SearchSpec{Population: 3, Generations: 2}
	srv, client := startService(t, campaignd.Config{Workers: 0, NoLocalWorkers: true})
	// Nothing will ever execute the campaign, so the graceful drain's
	// generation-settle grace would stall the teardown; hard-stop
	// instead (Kill shares Drain's once, making the later Drain a no-op).
	t.Cleanup(srv.Kill)
	st, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{"?canonical=1&offset=0&limit=1", "?canonical=1", "?offset=0&limit=1"} {
		body, total, next, status := fetchPage(t, client.Base+"/campaigns/"+st.ID+"/generations"+query)
		if status != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200", query, status)
		}
		if total != "0" {
			t.Errorf("%s: X-Total-Rows = %q, want 0", query, total)
		}
		if next != "" {
			t.Errorf("%s: empty trajectory advertised X-Next-Offset %q", query, next)
		}
		if len(body) != 0 {
			t.Errorf("%s: body = %q, want empty (no header before the first settled generation)", query, body)
		}
	}
}
