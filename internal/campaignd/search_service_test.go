package campaignd_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/progen"
	"interferometry/internal/results"
)

// searchSpec is a layout-search campaign small enough for unit tests:
// 5 individuals × 3 generations over the test benchmark.
func searchSpec() campaignd.JobSpec {
	return campaignd.JobSpec{
		Benchmark: "429.mcf",
		Layouts:   4,
		Budget:    60_000,
		Kind:      campaignd.KindSearch,
		Search:    &campaignd.SearchSpec{Population: 5, Generations: 3, Elite: 1, Tournament: 2},
	}
}

// cleanSearch runs the spec's search in a single process through
// core.RunSearch — the ground truth every service search test compares
// against, mirroring what cleanDataset is for layout campaigns.
func cleanSearch(t *testing.T, spec campaignd.JobSpec) *core.SearchResult {
	t.Helper()
	ps, ok := progen.ByName(spec.Benchmark)
	if !ok {
		t.Fatalf("unknown benchmark %s", spec.Benchmark)
	}
	prog, err := progen.Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunSearch(core.SearchConfig{
		Campaign: core.CampaignConfig{
			Program:   prog,
			InputSeed: 1,
			Budget:    spec.Budget,
			Layouts:   spec.Layouts,
			Fidelity:  experiments.Small.Fidelity,
			BaseSeed:  0x1f2e3d4c,
		},
		Population:  spec.Search.Population,
		Generations: spec.Search.Generations,
		Elite:       spec.Search.Elite,
		TournamentK: spec.Search.Tournament,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// searchReference renders the three byte-compared exports of a search
// result: the provenance generations CSV, the measurement-only
// canonical CSV, and the summary report JSON.
func searchReference(t *testing.T, res *core.SearchResult) (provenance, canonical, report []byte) {
	t.Helper()
	var p, c, r bytes.Buffer
	if err := results.WriteGenerationsCSV(&p, res); err != nil {
		t.Fatal(err)
	}
	if err := results.WriteGenerationMeasurementsCSV(&c, res); err != nil {
		t.Fatal(err)
	}
	if err := results.WriteJSON(&r, results.SummarizeSearch(res)); err != nil {
		t.Fatal(err)
	}
	return p.Bytes(), c.Bytes(), r.Bytes()
}

// fetchSearch pulls a finished search campaign's three exports.
func fetchSearch(t *testing.T, client *campaignd.Client, id string) (provenance, canonical, report []byte) {
	t.Helper()
	ctx := context.Background()
	p, err := client.Generations(ctx, id, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Generations(ctx, id, true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := client.SearchReport(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return p, c, r
}

// TestSearchServiceMatchesSingleProcess: a search campaign run through
// the service's local worker pool produces the exact generation CSVs
// and report JSON of a single-process core.RunSearch of the same spec.
func TestSearchServiceMatchesSingleProcess(t *testing.T) {
	spec := searchSpec()
	wantProv, wantCanon, wantReport := searchReference(t, cleanSearch(t, spec))

	_, client := startService(t, campaignd.Config{Workers: 3})
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != campaignd.KindSearch || st.Generations != spec.Search.Generations {
		t.Errorf("admitted status %+v lacks the search shape", st)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("search campaign ended %s: %s", st.State, st.Error)
	}
	if st.Generation != spec.Search.Generations {
		t.Errorf("done status reports %d settled generations, want %d", st.Generation, spec.Search.Generations)
	}
	if st.Completed != spec.Search.Population*spec.Search.Generations {
		t.Errorf("done status reports %d completed individuals, want %d",
			st.Completed, spec.Search.Population*spec.Search.Generations)
	}

	prov, canon, report := fetchSearch(t, client, st.ID)
	if !bytes.Equal(prov, wantProv) {
		t.Errorf("service generations differ from single-process run:\n--- service ---\n%s--- clean ---\n%s", prov, wantProv)
	}
	if !bytes.Equal(canon, wantCanon) {
		t.Errorf("service canonical generations differ from single-process run:\n--- service ---\n%s--- clean ---\n%s", canon, wantCanon)
	}
	if !bytes.Equal(report, wantReport) {
		t.Errorf("service report differs from single-process run:\n--- service ---\n%s--- clean ---\n%s", report, wantReport)
	}

	// Streamed generation pages (canonical, one generation per page)
	// concatenate to the blob byte for byte.
	var stream bytes.Buffer
	if err := client.StreamGenerations(ctx, st.ID, 1, true, &stream); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), canon) {
		t.Errorf("streamed generation pages differ from the blob (%d vs %d bytes)", stream.Len(), len(canon))
	}

	// Resubmitting the identical spec is idempotent: same campaign.
	st2, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID || st2.State != campaignd.StateDone {
		t.Errorf("resubmission created %+v instead of returning the done campaign", st2)
	}
}

// runSearchSharded runs one search spec on a fresh pure coordinator
// with n remote workers (leasing batch tasks per pull) and returns the
// canonical generations CSV and the report JSON.
func runSearchSharded(t *testing.T, spec campaignd.JobSpec, n, batch int) (canonical, report []byte) {
	t.Helper()
	_, client := startService(t, campaignd.Config{NoLocalWorkers: true})
	startWorkers(t, client.Base, client.HTTP, n, batch)
	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("sharded search (%d workers) ended %s: %s", n, st.State, st.Error)
	}
	_, canonical, report = fetchSearch(t, client, st.ID)
	return canonical, report
}

// TestSearchShardedMatchesSingleProcess is the distributed-search
// headline: the same search spec driven by one remote worker, by four,
// and by two workers batching their leases produces the exact bytes of
// a single-process core.RunSearch. Worker count, lease batching and
// completion order must not move a byte of the trajectory.
func TestSearchShardedMatchesSingleProcess(t *testing.T) {
	spec := searchSpec()
	_, wantCanon, wantReport := searchReference(t, cleanSearch(t, spec))

	for _, tc := range []struct {
		name     string
		n, batch int
	}{
		{"1-worker", 1, 0},
		{"4-worker", 4, 0},
		{"2-worker-batched", 2, 4},
	} {
		canon, report := runSearchSharded(t, spec, tc.n, tc.batch)
		if !bytes.Equal(canon, wantCanon) {
			t.Errorf("%s sharded search generations differ from single-process run:\n--- sharded ---\n%s--- clean ---\n%s",
				tc.name, canon, wantCanon)
		}
		if !bytes.Equal(report, wantReport) {
			t.Errorf("%s sharded search report differs from single-process run:\n--- sharded ---\n%s--- clean ---\n%s",
				tc.name, report, wantReport)
		}
	}
}

// TestSearchWorkerDeathRecovers kills a worker holding a leased, fully
// executed search individual whose result never reached the
// coordinator. The lease must expire, the individual requeue onto the
// surviving worker, the generation barrier release only once every
// individual settled — and the finished trajectory still match the
// single-process bytes, with zero failed individuals, because a
// re-execution derives identical results and a reaped lease costs no
// attempt.
func TestSearchWorkerDeathRecovers(t *testing.T) {
	spec := searchSpec()
	_, wantCanon, wantReport := searchReference(t, cleanSearch(t, spec))

	_, client := startService(t, campaignd.Config{
		NoLocalWorkers: true,
		Lease:          300 * time.Millisecond,
	})

	// The doomed worker goes first, alone, so it is guaranteed to hold
	// an individual when it dies.
	bt := &blockingTransport{base: client.HTTP.Transport, hit: make(chan struct{})}
	doomedCtx, kill := context.WithCancel(context.Background())
	defer kill()
	var doomedDone sync.WaitGroup
	doomedDone.Add(1)
	go func() {
		defer doomedDone.Done()
		w := &campaignd.Worker{
			Coordinator: client.Base,
			HTTP:        &http.Client{Transport: bt},
			Wait:        100 * time.Millisecond,
		}
		w.Run(doomedCtx)
	}()

	ctx := context.Background()
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bt.hit: // doomed worker executed an individual and is stuck reporting it
	case <-time.After(30 * time.Second):
		t.Fatal("doomed worker never executed an individual")
	}
	kill()
	doomedDone.Wait()

	// The survivor finishes the search, including the dead worker's
	// requeued individual.
	startWorkers(t, client.Base, client.HTTP, 1, 0)
	if st = waitDone(t, client, st.ID); st.State != campaignd.StateDone {
		t.Fatalf("search ended %s: %s", st.State, st.Error)
	}
	if st.Failed != 0 {
		t.Errorf("worker death produced %d failed individuals; a reaped lease must cost nothing", st.Failed)
	}
	_, canon, report := fetchSearch(t, client, st.ID)
	if !bytes.Equal(canon, wantCanon) {
		t.Errorf("search generations after worker death differ from single-process run:\n--- sharded ---\n%s--- clean ---\n%s", canon, wantCanon)
	}
	if !bytes.Equal(report, wantReport) {
		t.Errorf("search report after worker death differs from single-process run")
	}
}

// TestSearchKillRestartResumesFromWAL is the search durability
// acceptance test: a coordinator hard-killed mid-trajectory (at least
// one generation settled, no drain, no flush) must, on restart against
// the same WAL dir, resume the search from its generation checkpoint on
// its own and finish it byte-identical to a clean single-process run —
// and a further restart after finalization must NOT resurrect it, while
// a resubmission restores the whole trajectory from the checkpoint.
func TestSearchKillRestartResumesFromWAL(t *testing.T) {
	spec := searchSpec()
	spec.Budget = 200_000
	spec.Search.Generations = 4
	_, wantCanon, wantReport := searchReference(t, cleanSearch(t, spec))

	dir := t.TempDir()
	cfg := campaignd.Config{
		NoLocalWorkers: true,
		WALDir:         dir,
		CheckpointRoot: filepath.Join(dir, "checkpoints"),
	}

	// Phase 1: admit durably, let exactly one generation settle, die.
	// The coordinator is pure and its one remote worker stalls every
	// completion after generation 0's, freezing the trajectory at
	// generation 1 — a merely timed kill can lose the race against the
	// driver finishing the whole search on a loaded single-CPU host.
	srv1, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	hs1 := httptest.NewServer(srv1.Handler())
	client1 := &campaignd.Client{Base: hs1.URL, HTTP: hs1.Client()}
	stalled := &http.Client{Transport: &stallAfterTransport{
		base: hs1.Client().Transport,
		n:    int64(spec.Search.Population),
	}}
	stopWorker := startWorkers(t, hs1.URL, stalled, 1, 0)
	ctx := context.Background()
	st, err := client1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, err := client1.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State != campaignd.StateRunning {
			t.Fatalf("search finished (%s) before the kill; the stalled worker should make that impossible", cur.State)
		}
		if cur.Generation >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no generation settled within a minute")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv1.Kill()
	stopWorker()
	hs1.Close()

	// Phase 2: a restart on the same WAL dir must already know the
	// search — no resubmission — verify its checkpoint against the
	// journaled generation hashes, and run the rest of the trajectory to
	// the clean bytes.
	srv2, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	hs2 := httptest.NewServer(srv2.Handler())
	client2 := &campaignd.Client{Base: hs2.URL, HTTP: hs2.Client()}
	startWorkers(t, hs2.URL, hs2.Client(), 1, 0)
	st2, err := client2.Status(ctx, st.ID)
	if err != nil {
		t.Fatalf("restarted coordinator does not know search %s: %v", st.ID, err)
	}
	if st2.Restored == 0 {
		t.Errorf("restarted search reports no restored individuals; the settled generation should restore from its checkpoint")
	}
	if done := waitDone(t, client2, st.ID); done.State != campaignd.StateDone {
		t.Fatalf("resumed search ended %s: %s", done.State, done.Error)
	}
	_, canon, report := fetchSearch(t, client2, st.ID)
	if !bytes.Equal(canon, wantCanon) {
		t.Errorf("resumed search generations differ from clean run:\n--- resumed ---\n%s--- clean ---\n%s", canon, wantCanon)
	}
	if !bytes.Equal(report, wantReport) {
		t.Errorf("resumed search report differs from clean run:\n--- resumed ---\n%s--- clean ---\n%s", report, wantReport)
	}
	srv2.Kill() // the final was journaled before this kill
	hs2.Close()

	// Phase 3: the search finalized in the WAL, so the third coordinator
	// must not resume it; resubmitting restores the whole trajectory
	// from the checkpoint without measuring a single individual.
	srv3, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv3.Start()
	hs3 := httptest.NewServer(srv3.Handler())
	t.Cleanup(func() {
		srv3.Drain()
		hs3.Close()
	})
	client3 := &campaignd.Client{Base: hs3.URL, HTTP: hs3.Client()}
	if _, err := client3.Status(ctx, st.ID); err == nil {
		t.Fatalf("finalized search %s was resurrected after restart", st.ID)
	}
	st3, err := client3.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	total := spec.Search.Population * spec.Search.Generations
	if st3.ID != st.ID || st3.State != campaignd.StateDone || st3.Restored != total {
		t.Errorf("resubmission %+v, want done campaign %s with all %d individuals restored", st3, st.ID, total)
	}
	_, canon3, _ := fetchSearch(t, client3, st.ID)
	if !bytes.Equal(canon3, wantCanon) {
		t.Errorf("checkpoint-restored search generations differ from clean run")
	}
}

// TestSearchSpecValidation pins the search-spec admission contract.
func TestSearchSpecValidation(t *testing.T) {
	srv, err := campaignd.New(campaignd.Config{NoLocalWorkers: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Drain)
	for _, tc := range []struct {
		name string
		spec campaignd.JobSpec
	}{
		{"elite >= population", campaignd.JobSpec{Benchmark: "429.mcf", Kind: campaignd.KindSearch,
			Search: &campaignd.SearchSpec{Population: 4, Elite: 4}}},
		{"negative population", campaignd.JobSpec{Benchmark: "429.mcf", Kind: campaignd.KindSearch,
			Search: &campaignd.SearchSpec{Population: -1}}},
		{"unknown kind", campaignd.JobSpec{Benchmark: "429.mcf", Kind: "anneal"}},
		{"search params without search kind", campaignd.JobSpec{Benchmark: "429.mcf",
			Search: &campaignd.SearchSpec{Population: 4}}},
	} {
		if _, err := srv.Submit(tc.spec); err == nil {
			t.Errorf("%s: spec admitted, want rejection", tc.name)
		}
	}
}

// TestSearchIdentityDistinct: a search spec and a layout spec over the
// same benchmark, and two searches of different shape, are different
// campaigns — the identity hash covers the resolved search shape.
func TestSearchIdentityDistinct(t *testing.T) {
	layout := testSpec(4)
	search := searchSpec()
	if layout.ID(experiments.Small) == search.ID(experiments.Small) {
		t.Errorf("layout and search specs share identity %s", search.ID(experiments.Small))
	}
	wider := searchSpec()
	wider.Search.Population++
	if search.ID(experiments.Small) == wider.ID(experiments.Small) {
		t.Errorf("searches of different population share identity")
	}
	// Spelled-out defaults collapse onto the defaulted spelling.
	spelled := searchSpec()
	defaulted := searchSpec()
	spelled.Search.Tournament = 2
	if spelled.ID(experiments.Small) != defaulted.ID(experiments.Small) {
		t.Errorf("identical resolved search shapes hash differently")
	}
}

// stallAfterTransport forwards /worker/complete requests until n have
// gone through, then stalls every further one until its request context
// dies. With n set to the population it freezes a search right after
// generation 0 settles: generation 1's results are executed but can
// never be reported, so the trajectory provably sits mid-search for as
// long as a test needs to kill the coordinator.
type stallAfterTransport struct {
	base http.RoundTripper
	n    int64
	seen atomic.Int64
}

func (st *stallAfterTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/worker/complete") && st.seen.Add(1) > st.n {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	return st.base.RoundTrip(req)
}
