package artifactcache_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"interferometry/internal/artifactcache"
)

func open(t *testing.T, cfg artifactcache.Config) *artifactcache.Cache {
	t.Helper()
	c, err := artifactcache.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := open(t, artifactcache.Config{Dir: t.TempDir()})
	data := []byte("layout bytes")
	if _, ok := c.Get("key", 7); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("key", 7, data)
	got, ok := c.Get("key", 7)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, data)
	}
	// Distinct seeds and keys are distinct entries.
	if _, ok := c.Get("key", 8); ok {
		t.Error("seed 8 hit seed 7's entry")
	}
	if _, ok := c.Get("other", 7); ok {
		t.Error("key \"other\" hit key \"key\"'s entry")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 3 || s.Entries != 1 {
		t.Errorf("stats = %+v; want 1 hit, 3 misses, 1 entry", s)
	}
	if r := s.HitRate(); r != 0.25 {
		t.Errorf("hit rate = %v; want 0.25", r)
	}
}

func TestPutReplaces(t *testing.T) {
	c := open(t, artifactcache.Config{Dir: t.TempDir()})
	c.Put("key", 1, []byte("old"))
	c.Put("key", 1, []byte("newer bytes"))
	got, ok := c.Get("key", 1)
	if !ok || string(got) != "newer bytes" {
		t.Fatalf("Get after replace = %q, %v", got, ok)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != int64(len("newer bytes")) {
		t.Errorf("stats after replace = %+v", s)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	// Room for exactly two 8-byte artifacts.
	c := open(t, artifactcache.Config{Dir: t.TempDir(), MaxBytes: 16})
	c.Put("a", 0, []byte("aaaaaaaa"))
	c.Put("b", 0, []byte("bbbbbbbb"))
	c.Get("a", 0) // refresh a: b is now least recent
	c.Put("c", 0, []byte("cccccccc"))
	if _, ok := c.Get("b", 0); ok {
		t.Error("b survived; eviction is not least-recently-used")
	}
	if _, ok := c.Get("a", 0); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if _, ok := c.Get("c", 0); !ok {
		t.Error("the just-inserted c was evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Bytes > 16 {
		t.Errorf("stats = %+v; want 1 eviction and <=16 bytes", s)
	}
}

func TestOversizedArtifactNeverExceedsBound(t *testing.T) {
	c := open(t, artifactcache.Config{Dir: t.TempDir(), MaxBytes: 4})
	c.Put("big", 0, []byte("way too large"))
	if s := c.Stats(); s.Bytes > 4 {
		t.Errorf("cache holds %d bytes, bound is 4", s.Bytes)
	}
}

func TestReopenWarm(t *testing.T) {
	dir := t.TempDir()
	c := open(t, artifactcache.Config{Dir: dir})
	for seed := uint64(0); seed < 5; seed++ {
		c.Put("key", seed, []byte(fmt.Sprintf("artifact %d", seed)))
	}

	re := open(t, artifactcache.Config{Dir: dir})
	if s := re.Stats(); s.Entries != 5 {
		t.Fatalf("reopened cache indexed %d entries, want 5", s.Entries)
	}
	for seed := uint64(0); seed < 5; seed++ {
		got, ok := re.Get("key", seed)
		if !ok || string(got) != fmt.Sprintf("artifact %d", seed) {
			t.Errorf("seed %d after reopen: %q, %v", seed, got, ok)
		}
	}
}

func TestReopenRespectsBoundByRecency(t *testing.T) {
	dir := t.TempDir()
	c := open(t, artifactcache.Config{Dir: dir})
	c.Put("key", 1, []byte("aaaaaaaa"))
	c.Put("key", 2, []byte("bbbbbbbb"))
	// Make seed 1 clearly older on disk; index order is mtime-based.
	old := time.Now().Add(-time.Hour)
	for _, ent := range dirFiles(t, dir) {
		if filepath.Base(ent) == fmt.Sprintf("%016x.art", uint64(1)) {
			if err := os.Chtimes(ent, old, old); err != nil {
				t.Fatal(err)
			}
		}
	}

	re := open(t, artifactcache.Config{Dir: dir, MaxBytes: 8})
	if _, ok := re.Get("key", 2); !ok {
		t.Error("newest entry evicted on reopen")
	}
	if _, ok := re.Get("key", 1); ok {
		t.Error("oldest entry survived a bound that fits only one")
	}
}

func TestUnreadableEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c := open(t, artifactcache.Config{Dir: dir})
	c.Put("key", 3, []byte("bytes"))
	for _, ent := range dirFiles(t, dir) {
		if err := os.Remove(ent); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("key", 3); ok {
		t.Fatal("Get served an entry whose file is gone")
	}
	if s := c.Stats(); s.Entries != 0 || s.Misses != 1 {
		t.Errorf("stats after dropped entry = %+v", s)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := artifactcache.Open(artifactcache.Config{}); err == nil {
		t.Fatal("Open without a directory succeeded")
	}
}

func dirFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}
