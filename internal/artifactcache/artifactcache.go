// Package artifactcache is a bounded, content-addressed on-disk store
// for compiled layout artifacts. Entries are keyed by (artifact key,
// layout seed): the key is a content hash of everything that determines
// the artifact's bytes (program fingerprint plus compile and link
// configuration — toolchain.Builder.CacheKey computes it), and the seed
// selects the layout. Because the key already names the content,
// invalidation is structural: a changed program or toolchain config
// hashes to a new key and simply addresses different entries, while the
// stale ones age out of the LRU under the byte bound. Nothing is ever
// served across a key change.
//
// The cache holds opaque bytes — it knows nothing about executables —
// so the same store can back any deterministic, seed-addressed build
// product. campaignd wires it under the build seam so resubmitted,
// resumed and extended campaigns skip redundant compiles.
package artifactcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"interferometry/internal/atomicio"
	"interferometry/internal/obs"
)

// Config parameterizes a cache.
type Config struct {
	// Dir is the cache root. Required; it is created if missing.
	Dir string
	// MaxBytes bounds the bytes stored on disk; the least recently used
	// entries are evicted to stay under it. Zero means 256 MiB.
	MaxBytes int64
	// Obs optionally observes the cache (artifactcache_* instruments).
	// Nil runs unobserved; Stats always works.
	Obs *obs.Observer
}

func (c Config) maxBytes() int64 {
	if c.MaxBytes <= 0 {
		return 256 << 20
	}
	return c.MaxBytes
}

// entry is one stored artifact; entries live in a map for lookup and an
// LRU list (front = most recent) for eviction order.
type entry struct {
	rel  string // path relative to the cache root
	size int64
	elem *list.Element
}

// Cache is a bounded on-disk artifact store. All methods are safe for
// concurrent use.
type Cache struct {
	dir      string
	maxBytes int64

	hits, misses, evictions *obs.Counter
	bytesG, entriesG        *obs.Gauge

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // of *entry
	bytes   int64

	// Local tallies mirror the obs counters so Stats works unobserved.
	nHits, nMisses, nEvictions uint64
}

// Stats is a point-in-time snapshot of the cache's counters and size.
type Stats struct {
	Hits, Misses, Evictions uint64
	Bytes                   int64
	Entries                 int
}

// HitRate is hits over lookups, 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Open prepares the cache directory and indexes any artifacts a
// previous process left there, ordered least-recently-used by file
// modification time, so a restarted service resumes with a warm cache.
func Open(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("artifactcache: cache needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifactcache: %w", err)
	}
	c := &Cache{
		dir:      cfg.Dir,
		maxBytes: cfg.maxBytes(),
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
	if o := cfg.Obs; o != nil {
		c.hits = o.Counter("artifactcache_hits_total", "layout artifacts served from the cache")
		c.misses = o.Counter("artifactcache_misses_total", "layout artifact lookups that had to build")
		c.evictions = o.Counter("artifactcache_evictions_total", "layout artifacts evicted to stay under the byte bound")
		c.bytesG = o.Gauge("artifactcache_bytes", "bytes of layout artifacts on disk")
		c.entriesG = o.Gauge("artifactcache_entries", "layout artifacts on disk")
	}
	if err := c.index(); err != nil {
		return nil, err
	}
	return c, nil
}

// index walks the cache directory and rebuilds the LRU from file
// modification times (oldest = least recent). Unreadable or foreign
// files are skipped, never served.
func (c *Cache) index() error {
	type found struct {
		rel   string
		size  int64
		mtime time.Time
	}
	var files []found
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if filepath.Ext(path) != artifactExt {
			// A crash between temp write and rename leaves an orphaned
			// temp file; sweep it instead of letting it accumulate.
			if strings.Contains(filepath.Base(path), artifactExt+".tmp") {
				os.Remove(path)
			}
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with an eviction elsewhere; skip
		}
		rel, err := filepath.Rel(c.dir, path)
		if err != nil {
			return nil
		}
		files = append(files, found{rel: rel, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("artifactcache: index: %w", err)
	}
	sort.Slice(files, func(a, b int) bool { return files[a].mtime.Before(files[b].mtime) })
	for _, f := range files {
		e := &entry{rel: f.rel, size: f.size}
		e.elem = c.lru.PushFront(e)
		c.entries[f.rel] = e
		c.bytes += f.size
	}
	c.evictLocked(nil)
	c.updateGaugesLocked()
	return nil
}

// artifactExt marks cache-owned files; everything else in the directory
// is ignored.
const artifactExt = ".art"

// rel addresses one artifact: a subdirectory per key (hashed, so any
// key string is path-safe) and one file per seed.
func rel(key string, seed uint64) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(hex.EncodeToString(sum[:8]), fmt.Sprintf("%016x%s", seed, artifactExt))
}

// Get returns the artifact stored under (key, seed) and whether it was
// present. A hit refreshes the entry's recency; an unreadable entry is
// dropped and reported as a miss. The file read happens outside the
// cache lock so concurrent workers' hits do not serialize on disk I/O.
func (c *Cache) Get(key string, seed uint64) ([]byte, bool) {
	r := rel(key, seed)
	c.mu.Lock()
	_, ok := c.entries[r]
	if !ok {
		c.miss()
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()

	data, err := os.ReadFile(filepath.Join(c.dir, r))

	c.mu.Lock()
	defer c.mu.Unlock()
	e, present := c.entries[r]
	if err != nil {
		// The entry raced an eviction (fine, it is already gone) or the
		// file is unreadable (drop it — never serve it again).
		if present {
			c.dropLocked(e)
			c.updateGaugesLocked()
		}
		c.miss()
		return nil, false
	}
	if present {
		c.lru.MoveToFront(e.elem)
	}
	c.nHits++
	c.hits.Inc()
	return data, true
}

// Put stores data under (key, seed), replacing any previous artifact,
// then evicts least-recently-used entries until the store fits the byte
// bound again. Writes are atomic (temp file + rename), so a crash never
// leaves a half-written artifact to be served later. Put failures are
// silent by design: the cache is an accelerator, and the caller's build
// result is already in hand.
func (c *Cache) Put(key string, seed uint64, data []byte) {
	r := rel(key, seed)
	path := filepath.Join(c.dir, r)
	// Write outside the lock: each Put gets its own temp file and the
	// rename is atomic, so concurrent Puts of the same entry are safe
	// (last rename wins) and only the index update below serializes.
	// atomicio fsyncs the artifact and its directory entry, so a crash
	// after Put returns can never leave a half-written (or vanished)
	// artifact to be indexed by the next process's warm reopen.
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[r]; ok {
		c.bytes -= prev.size
		prev.size = int64(len(data))
		c.bytes += prev.size
		c.lru.MoveToFront(prev.elem)
	} else {
		e := &entry{rel: r, size: int64(len(data))}
		e.elem = c.lru.PushFront(e)
		c.entries[r] = e
		c.bytes += e.size
	}
	c.evictLocked(c.entries[r])
	c.updateGaugesLocked()
}

// miss tallies one miss; callers hold c.mu.
func (c *Cache) miss() {
	c.nMisses++
	c.misses.Inc()
}

// evictLocked removes least-recently-used entries until the store is
// within the byte bound. keep, when non-nil, is evicted last (it is the
// entry just inserted) — but even it goes if it alone exceeds the
// bound, so the bound is never exceeded between calls.
func (c *Cache) evictLocked(keep *entry) {
	for c.bytes > c.maxBytes && c.lru.Len() > 0 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		if e == keep && c.lru.Len() > 1 {
			// keep is both MRU and LRU only when it is the sole entry;
			// with the list front-inserted this branch is unreachable,
			// but guard it so a future ordering change cannot loop.
			break
		}
		c.dropLocked(e)
		c.nEvictions++
		c.evictions.Inc()
	}
}

// dropLocked removes one entry from the index and the disk.
func (c *Cache) dropLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.rel)
	c.bytes -= e.size
	os.Remove(filepath.Join(c.dir, e.rel))
}

func (c *Cache) updateGaugesLocked() {
	c.bytesG.Set(float64(c.bytes))
	c.entriesG.Set(float64(c.lru.Len()))
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.nHits,
		Misses:    c.nMisses,
		Evictions: c.nEvictions,
		Bytes:     c.bytes,
		Entries:   c.lru.Len(),
	}
}
