package interferometry_test

import (
	"sort"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
	"interferometry/internal/xrand"
)

// This file pins the DESIGN.md §5 invariants 1-4 as named property
// tests. Each test sweeps seedCount derived seeds; break any of the
// seams (trace replay, seed plumbing, linker address assignment,
// allocator bookkeeping) and the corresponding test fails.

// seedCount is how many derived seeds each property sweeps.
func seedCount() int {
	if testing.Short() {
		return 8
	}
	return 50
}

const invariantBase = 0x1471a57 // arbitrary, fixed: the sweeps must be reproducible

// invariantSeeds derives the i-th (layout, heap, noise) seed tuple.
func invariantSeeds(i int) (layout, heapSeed, noise uint64) {
	n := uint64(i)
	return xrand.Mix(invariantBase, 1, n) | 1, xrand.Mix(invariantBase, 2, n), xrand.Mix(invariantBase, 3, n)
}

// invariantProgram is the shared fixture: a real suite benchmark, so
// the semantic stream has branches, indirect calls and memory traffic,
// at a budget small enough that a 50-seed sweep stays fast.
func invariantProgram(t *testing.T) (*isa.Program, *interp.Trace) {
	t.Helper()
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("suite benchmark missing")
	}
	prog, err := progen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := interp.Run(prog, 1, interp.StopRule{Budget: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	return prog, trace
}

func buildLayout(t *testing.T, prog *isa.Program, seed uint64) *toolchain.Executable {
	t.Helper()
	exe, err := toolchain.BuildLayout(prog, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatalf("layout seed %#x: %v", seed, err)
	}
	return exe
}

// semanticCounters is the layout-independent subset of a counter
// readout: the retired instruction and event *stream*, as opposed to
// the timing consequences (cycles, mispredictions, cache misses) that
// layout perturbation exists to vary.
type semanticCounters struct {
	instructions     uint64
	branchesRetired  uint64
	condBranches     uint64
	indirectBranches uint64
	dataAccesses     uint64
}

// TestInvariantSemanticInvariance pins §5 invariant 1: for a fixed
// benchmark and input seed, the retired instruction count, branch
// stream and memory access stream are identical across every layout and
// heap seed — reordering and heap randomization change addresses only.
func TestInvariantSemanticInvariance(t *testing.T) {
	prog, trace := invariantProgram(t)
	m := machine.New(machine.XeonE5440())
	var ref semanticCounters
	for i := 0; i < seedCount(); i++ {
		ls, hs, _ := invariantSeeds(i)
		exe := buildLayout(t, prog, ls)
		c, _, err := m.RunDeterministic(machine.RunSpec{
			Exe: exe, Trace: trace,
			HeapMode: heap.ModeRandomized, HeapSeed: hs,
			DisableNoise: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		got := semanticCounters{
			instructions:     c.Instructions,
			branchesRetired:  c.BranchesRetired,
			condBranches:     c.CondBranches,
			indirectBranches: c.IndirectBranches,
			dataAccesses:     c.L1DAccesses,
		}
		if i == 0 {
			ref = got
			if ref.instructions == 0 || ref.condBranches == 0 || ref.dataAccesses == 0 {
				t.Fatalf("degenerate reference run: %+v", ref)
			}
			continue
		}
		if got != ref {
			t.Fatalf("semantic counters changed under layout seed %#x heap seed %#x:\n got %+v\nwant %+v", ls, hs, got, ref)
		}
	}
}

// TestInvariantReproducibility pins §5 invariant 2: the same
// (benchmark, layout seed, heap seed, noise seed) tuple produces
// bit-identical counters — across repeated measurements, fresh
// harnesses and freshly rebuilt executables.
func TestInvariantReproducibility(t *testing.T) {
	prog, trace := invariantProgram(t)
	h1 := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaper}
	h2 := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaper}
	for i := 0; i < seedCount(); i++ {
		ls, hs, ns := invariantSeeds(i)
		spec := machine.RunSpec{
			Exe: buildLayout(t, prog, ls), Trace: trace,
			HeapMode: heap.ModeRandomized, HeapSeed: hs, NoiseSeed: ns,
		}
		first, err := h1.Measure(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		again, err := h1.Measure(spec)
		if err != nil {
			t.Fatalf("seed %d remeasure: %v", i, err)
		}
		if first != again {
			t.Fatalf("same harness, same seeds, different counters (layout %#x heap %#x noise %#x):\n%+v\n%+v",
				ls, hs, ns, first, again)
		}
		spec.Exe = buildLayout(t, prog, ls) // rebuilt from the same seed
		fresh, err := h2.Measure(spec)
		if err != nil {
			t.Fatalf("seed %d fresh harness: %v", i, err)
		}
		if first != fresh {
			t.Fatalf("fresh harness + rebuilt executable diverged (layout %#x heap %#x noise %#x):\n%+v\n%+v",
				ls, hs, ns, first, fresh)
		}
	}
}

// TestInvariantLinkerSoundness pins §5 invariant 3: every instruction
// byte gets a unique address, procedures do not overlap, alignment
// requests are honored, and the address map covers the whole program.
func TestInvariantLinkerSoundness(t *testing.T) {
	prog, _ := invariantProgram(t)
	const procAlign, globalAlign = 16, 64 // the LinkConfig defaults
	for i := 0; i < seedCount(); i++ {
		ls, _, _ := invariantSeeds(i)
		exe := buildLayout(t, prog, ls)
		if err := toolchain.CheckExecutable(exe, i); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}

		// Block byte ranges are disjoint and inside the text segment.
		type span struct{ lo, hi uint64 }
		blocks := make([]span, len(prog.Blocks))
		for b := range prog.Blocks {
			lo := exe.BlockAddr[b]
			blocks[b] = span{lo, lo + uint64(prog.Blocks[b].Bytes)}
		}
		sort.Slice(blocks, func(a, b int) bool { return blocks[a].lo < blocks[b].lo })
		for b := 1; b < len(blocks); b++ {
			if blocks[b].lo < blocks[b-1].hi {
				t.Fatalf("seed %d: block bytes overlap at %#x", i, blocks[b].lo)
			}
		}
		if blocks[0].lo < exe.CodeBase || blocks[len(blocks)-1].hi > exe.CodeLimit {
			t.Fatalf("seed %d: blocks escape the text segment [%#x,%#x)", i, exe.CodeBase, exe.CodeLimit)
		}

		// Procedure entries are aligned, map to their first block, and
		// the link order is a permutation of all procedures.
		seen := make([]bool, len(prog.Procs))
		for _, pid := range exe.LinkOrder {
			if seen[pid] {
				t.Fatalf("seed %d: procedure %d linked twice", i, pid)
			}
			seen[pid] = true
		}
		for p := range prog.Procs {
			if !seen[p] {
				t.Fatalf("seed %d: procedure %d missing from link order", i, p)
			}
			if exe.ProcAddr[p]%procAlign != 0 {
				t.Fatalf("seed %d: procedure %d entry %#x not %d-aligned", i, p, exe.ProcAddr[p], procAlign)
			}
			if first := prog.Procs[p].Blocks[0]; exe.BlockAddr[first] != exe.ProcAddr[p] {
				t.Fatalf("seed %d: procedure %d entry %#x != first block %#x", i, p, exe.ProcAddr[p], exe.BlockAddr[first])
			}
		}

		// Globals are aligned, disjoint and inside the data segment.
		var globals []span
		for o := range prog.Objects {
			if prog.Objects[o].Heap {
				continue
			}
			base := exe.GlobalBase[o]
			if base%globalAlign != 0 {
				t.Fatalf("seed %d: global %d base %#x not %d-aligned", i, o, base, globalAlign)
			}
			globals = append(globals, span{base, base + prog.Objects[o].Size})
		}
		sort.Slice(globals, func(a, b int) bool { return globals[a].lo < globals[b].lo })
		for g := 1; g < len(globals); g++ {
			if globals[g].lo < globals[g-1].hi {
				t.Fatalf("seed %d: globals overlap at %#x", i, globals[g].lo)
			}
		}
		if len(globals) > 0 && (globals[0].lo < exe.DataBase || globals[len(globals)-1].hi > exe.DataLimit) {
			t.Fatalf("seed %d: globals escape the data segment", i)
		}
	}
}

// TestInvariantDeltaPathEquivalence pins §5 invariants 1-2 under the
// delta-replay engine: a campaign forced through machine.Delta produces
// bit-identical observations — same semantic counters (invariant 1),
// same reproducible (seed → measurement) mapping (invariant 2) — as the
// sequential scalar path, and repeating the delta run reproduces itself.
// The delta engine re-simulates only layout-perturbed state, so this is
// the invariant the whole engine hangs on: unchanged segments replayed
// from the recording must be indistinguishable from re-simulation.
func TestInvariantDeltaPathEquivalence(t *testing.T) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("suite benchmark missing")
	}
	prog, err := progen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	layouts := seedCount()
	run := func(mode core.DeltaMode, batch int) *core.Dataset {
		t.Helper()
		ds, err := core.RunCampaign(core.CampaignConfig{
			Program:   prog,
			InputSeed: 1,
			Budget:    80_000,
			Layouts:   layouts,
			BaseSeed:  invariantBase,
			HeapMode:  heap.ModeRandomized,
			BatchSize: batch,
			Delta:     mode,
		})
		if err != nil {
			t.Fatalf("delta mode %s: %v", mode, err)
		}
		return ds
	}
	scalar := run(core.DeltaOff, 1) // BatchSize 1: the sequential scalar path
	delta := run(core.DeltaOn, 0)
	again := run(core.DeltaOn, 0)
	for i := range scalar.Obs {
		if scalar.Obs[i] != delta.Obs[i] {
			t.Fatalf("layout %d diverged under delta replay:\nscalar %+v\ndelta  %+v", i, scalar.Obs[i], delta.Obs[i])
		}
		if delta.Obs[i] != again.Obs[i] {
			t.Fatalf("layout %d not reproducible under delta replay:\nfirst  %+v\nsecond %+v", i, delta.Obs[i], again.Obs[i])
		}
	}
	if scalar.Obs[0].Instructions == 0 || scalar.Obs[0].Cycles == 0 {
		t.Fatalf("degenerate reference observation: %+v", scalar.Obs[0])
	}
}

// TestInvariantAllocatorSoundness pins §5 invariant 4: live allocations
// never overlap, frees make space reusable, and the randomized
// allocator permutes a size class's slot grid rather than inventing
// addresses off it.
func TestInvariantAllocatorSoundness(t *testing.T) {
	const objects = 24
	for i := 0; i < seedCount(); i++ {
		seedLayout, heapSeed, _ := invariantSeeds(i)
		rng := xrand.New(seedLayout)
		a := heap.NewRandomized(heapSeed, heap.Config{})

		type obj struct {
			base, size uint64
			live       bool
		}
		placed := make([]obj, objects)
		sizeFor := func(o int) uint64 { return 8 + xrand.Mix(heapSeed, uint64(o))%500 }
		checkDisjoint := func(when string) {
			t.Helper()
			var live []obj
			for _, o := range placed {
				if o.live {
					live = append(live, o)
				}
			}
			sort.Slice(live, func(a, b int) bool { return live[a].base < live[b].base })
			for k := 1; k < len(live); k++ {
				if live[k].base < live[k-1].base+live[k-1].size {
					t.Fatalf("seed %d (%s): live allocations overlap at %#x", i, when, live[k].base)
				}
			}
		}

		// Random churn: allocate everything, then free/reallocate.
		for o := 0; o < objects; o++ {
			size := sizeFor(o)
			base := a.Alloc(isa.ObjectID(o), size)
			placed[o] = obj{base, size, true}
			if got, ok := a.Base(isa.ObjectID(o)); !ok || got != base {
				t.Fatalf("seed %d: Base(%d) = %#x,%v after Alloc returned %#x", i, o, got, ok, base)
			}
			checkDisjoint("fill")
		}
		for step := 0; step < 4*objects; step++ {
			o := rng.Intn(objects)
			if placed[o].live && rng.Intn(2) == 0 {
				a.Free(isa.ObjectID(o))
				placed[o].live = false
				if a.Live(isa.ObjectID(o)) {
					t.Fatalf("seed %d: object %d live after Free", i, o)
				}
			} else {
				size := sizeFor(o)
				placed[o] = obj{a.Alloc(isa.ObjectID(o), size), size, true}
				checkDisjoint("churn")
			}
		}

		// Permutation of the slot grid: same-size allocations land on
		// distinct slot-aligned addresses.
		grid := heap.NewRandomized(heapSeed, heap.Config{})
		const slot = 64 // class slot for a 40-byte object with MinSlot 16
		seen := map[uint64]bool{}
		for o := 0; o < objects; o++ {
			base := grid.Alloc(isa.ObjectID(o), 40)
			if base%slot != 0 {
				t.Fatalf("seed %d: slot address %#x off the %d-byte grid", i, base, slot)
			}
			if seen[base] {
				t.Fatalf("seed %d: slot %#x handed out twice while live", i, base)
			}
			seen[base] = true
		}

		// Frees make space reusable: repeated free-all/refill cycles
		// stay within a fixed footprint. If freed slots were never
		// reclaimed, 32 cycles of fresh slots would blow far past it.
		bound := uint64(0x20000000) + uint64(16*objects)*slot
		for cycle := 0; cycle < 32; cycle++ {
			for o := 0; o < objects; o++ {
				grid.Free(isa.ObjectID(o))
			}
			for o := 0; o < objects; o++ {
				if base := grid.Alloc(isa.ObjectID(o), 40); base > bound {
					t.Fatalf("seed %d: cycle %d leaked address space: %#x past the %#x footprint bound", i, cycle, base, bound)
				}
			}
		}
	}
}
