// Measurementbias: the Mytkowicz et al. phenomenon that inspired the
// paper — "producing wrong data without doing anything obviously wrong".
//
// We take one benchmark and pretend a compiler writer evaluated a fake
// "optimization" that does not change the program at all: the optimized
// build simply links in a different (but fixed) order. Under a single
// layout per build — the usual methodology — the fake optimization can
// show a convincing speedup or slowdown. Under interferometry's many
// layouts, the two builds' CPI distributions coincide and the effect is
// exposed as layout luck.
//
// Run with: go run ./examples/measurementbias
package main

import (
	"fmt"
	"log"

	"interferometry"
	"interferometry/internal/stats"
)

func main() {
	spec, _ := interferometry.BenchmarkByName("464.h264ref")
	prog, err := interferometry.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	// The "baseline" and "optimized" builds: semantically identical, each
	// pinned to one arbitrary layout, measured the conventional way.
	run := func(firstLayout int) (*interferometry.Dataset, error) {
		return interferometry.RunCampaign(interferometry.CampaignConfig{
			Program:     prog,
			InputSeed:   1,
			Budget:      300_000,
			Layouts:     1,
			FirstLayout: firstLayout,
			BaseSeed:    99,
		})
	}
	baseline, err := run(0)
	if err != nil {
		log.Fatal(err)
	}
	// Scan a few candidate "optimized" layouts and report the luckiest —
	// exactly what an unlucky experimental setup can do by accident.
	bestCPI, bestIdx := baseline.Obs[0].CPI(), 0
	for i := 1; i <= 8; i++ {
		d, err := run(i)
		if err != nil {
			log.Fatal(err)
		}
		if cpi := d.Obs[0].CPI(); cpi < bestCPI {
			bestCPI, bestIdx = cpi, i
		}
	}
	base := baseline.Obs[0].CPI()
	fmt.Printf("conventional methodology (one layout per build):\n")
	fmt.Printf("  baseline  CPI %.4f\n", base)
	fmt.Printf("  \"optimized\" CPI %.4f  -> claimed speedup %.2f%%\n",
		bestCPI, (base-bestCPI)/base*100)
	fmt.Printf("  (the \"optimization\" is a no-op: only the link order differs)\n\n")

	// Interferometry: measure both builds over many layouts each.
	many, err := interferometry.RunCampaign(interferometry.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    300_000,
		Layouts:   40,
		BaseSeed:  99,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := stats.Summarize(many.CPIs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interferometry (40 layouts of the same program):\n")
	fmt.Printf("  CPI mean %.4f, sd %.4f, range [%.4f, %.4f] (spread %.2f%%)\n",
		sum.Mean, sum.StdDev, sum.Min, sum.Max, sum.PctSpreadRange)
	fmt.Printf("  both builds fall inside this distribution: the claimed %.2f%%\n",
		(base-bestCPI)/base*100)
	fmt.Printf("  speedup (layout %d) is layout luck, not an optimization.\n", bestIdx)

	// And the constructive use of the same variance: a performance model.
	model, err := many.MPKIModel()
	if err == nil {
		fmt.Printf("\nthe same variance, used constructively:\n  %v\n", model)
	}
}
