// Runlimiter: the §5.7 two-pass profiling and instrumentation workflow.
//
// SPEC benchmarks run for over 30 minutes on ref inputs; the paper's
// Camino pass profiles a benchmark for ~2 minutes, picks "a procedure
// with a low dynamic count that is also executed near the end" and
// instruments it to stop the program after the same number of entries —
// so every perturbed executable of the campaign retires exactly the same
// instruction count. This example runs the two passes and demonstrates
// the invariant.
//
// Run with: go run ./examples/runlimiter
package main

import (
	"fmt"
	"log"

	"interferometry"
	"interferometry/internal/interp"
	"interferometry/internal/toolchain"
)

func main() {
	spec, _ := interferometry.BenchmarkByName("416.gamess")
	prog, err := interferometry.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1: profile under the time budget (our "two minutes" is an
	// instruction budget) and pick the stop procedure.
	const budget = 250_000
	lim, err := toolchain.FindLimiter(prog, 1, toolchain.LimiterConfig{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s, profiling budget %d instructions\n", prog.Name, budget)
	fmt.Printf("chosen stop procedure: %s after %d entries\n",
		prog.Procs[lim.StopProc].Name, lim.StopCount)
	fmt.Printf("instrumented run retires exactly %d instructions\n\n", lim.Instrs)

	// Pass 2: the instrumented rule reproduces the identical instruction
	// count on every run — and, because traces are layout-independent,
	// for every one of the campaign's perturbed executables too.
	for run := 1; run <= 3; run++ {
		tr, err := interp.Run(prog, 1, lim.Rule())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %d instructions, %d conditional branches, stopped by %s\n",
			run, tr.Instrs, tr.CondBranches, tr.StoppedBy)
	}

	// The limiter then drives a whole campaign.
	ds, err := interferometry.RunCampaign(interferometry.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Limiter:   lim,
		Layouts:   10,
		BaseSeed:  5,
	})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for _, o := range ds.Obs {
		if o.Instructions != lim.Instrs {
			same = false
		}
	}
	fmt.Printf("\ncampaign of %d layouts: identical retired-instruction counts: %v\n",
		len(ds.Obs), same)
}
