// Quickstart: the minimal end-to-end interferometry workflow.
//
// We pick one benchmark, measure it under 40 code reorderings, fit the
// CPI-versus-MPKI regression model, and ask the model two questions the
// paper asks in §1.4: what would a perfect branch predictor buy, and what
// does one extra misprediction per kilo-instruction cost?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"interferometry"
)

func main() {
	spec, ok := interferometry.BenchmarkByName("400.perlbench")
	if !ok {
		log.Fatal("suite benchmark missing")
	}
	prog, err := interferometry.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d procedures, %d static branches\n",
		prog.Name, len(prog.Procs), prog.StaticBranchCount())

	ds, err := interferometry.RunCampaign(interferometry.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    300_000, // retired instructions per run
		Layouts:   40,      // semantically equivalent executables
		BaseSeed:  2024,
	})
	if err != nil {
		log.Fatal(err)
	}

	model, err := ds.MPKIModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model)
	if !model.Significant() {
		fmt.Println("warning: correlation not significant at p<=0.05; add layouts")
	}

	real := ds.RealPredictor(model)
	perfect := model.PredictCPI(0)
	fmt.Printf("measured:  MPKI %.2f, CPI %.4f (95%% CI ±%.4f)\n",
		real.MPKI, real.CPI.Center, real.CPI.Half())
	fmt.Printf("perfect prediction: CPI %.4f (95%% PI [%.4f, %.4f])\n",
		perfect.Center, perfect.Low, perfect.High)
	fmt.Printf("=> improvement %.1f%%\n", (real.CPI.Center-perfect.Center)/real.CPI.Center*100)

	half := model.PredictCPI(real.MPKI / 2)
	fmt.Printf("halving MPKI to %.2f: CPI %.4f (%.1f%% better)\n",
		real.MPKI/2, half.Center, (real.CPI.Center-half.Center)/real.CPI.Center*100)

	// The paper's third §1.4 planning statement, inverted: how much of the
	// misprediction rate must a new predictor remove to buy 10% CPI?
	red := model.ReductionForCPIGain(real.MPKI, 10)
	fmt.Printf("a 10%% CPI improvement requires removing %.0f%% of mispredictions\n", red*100)
}
