// Codeplacement: testing the paper's §2.2 aside — "if thoughtful code
// placement optimizations like those mentioned above were widely adopted,
// our results would show less variance in execution behavior... most
// production code is not optimized with code placement in mind".
//
// We lay one large-code benchmark out Pettis-Hansen style (procedures
// sorted hot-first from a profile) and compare its performance against
// the distribution of 40 random link orders. The optimized layout should
// sit at the favorable edge of the random distribution, mostly through
// fewer instruction-cache misses.
//
// Run with: go run ./examples/codeplacement
package main

import (
	"fmt"
	"log"

	"interferometry"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
)

func main() {
	spec, _ := interferometry.BenchmarkByName("445.gobmk") // L1I-bound
	prog, err := interferometry.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 300_000
	trace, err := interp.Run(prog, 1, interp.StopRule{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}

	h := &pmc.Harness{Machine: machine.New(machine.XeonE5440()), Fidelity: pmc.FidelityPaper}
	measure := func(exe *toolchain.Executable) (cpi, l1iPKI float64) {
		m, err := h.Measure(machine.RunSpec{Exe: exe, Trace: trace, NoiseSeed: 7})
		if err != nil {
			log.Fatal(err)
		}
		return m.CPI(), m.PKI(pmc.EvL1IMisses)
	}

	// The random-layout population.
	var cpis, l1is []float64
	for seed := uint64(1); seed <= 40; seed++ {
		exe, err := toolchain.BuildLayout(prog, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			log.Fatal(err)
		}
		c, l := measure(exe)
		cpis = append(cpis, c)
		l1is = append(l1is, l)
	}
	sum, _ := stats.Summarize(cpis)

	// The profile-guided layout (profiled on the same input).
	pgo, err := toolchain.BuildHotLayout(prog, trace, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pgoCPI, pgoL1I := measure(pgo)

	beat := 0
	for _, c := range cpis {
		if pgoCPI < c {
			beat++
		}
	}
	fmt.Printf("%s over 40 random layouts: CPI mean %.4f, range [%.4f, %.4f], L1I %.2f-%.2f/KI\n",
		prog.Name, sum.Mean, sum.Min, sum.Max, stats.Min(l1is), stats.Max(l1is))
	fmt.Printf("hot-first (Pettis-Hansen style) layout:   CPI %.4f, L1I %.2f/KI\n", pgoCPI, pgoL1I)
	fmt.Printf("the optimized layout beats %d/40 random layouts (%.0f%% of the field)\n",
		beat, float64(beat)/40*100)
	fmt.Printf("\n§2.2's point: production code ships at a random point of this distribution,\n")
	fmt.Printf("which is exactly why interferometry has variance to work with.\n")
}
