// Newpredictor: the paper's §7 use case — evaluate branch predictors for
// an existing machine without a cycle-accurate simulator.
//
// We build the performance model from real-machine measurements, then
// simulate only the candidate predictors (GAs at several budgets, L-TAGE,
// and a custom predictor defined right here) on the same executables, and
// push their misprediction rates through the model. "Our tool allows a
// quick way of evaluating many potential branch predictors for a given
// microarchitecture" (§7.2.3).
//
// Run with: go run ./examples/newpredictor
package main

import (
	"fmt"
	"log"

	"interferometry"
)

// agreeGshare is our hypothetical design: a gshare predictor whose table
// is protected from aliasing by an agreement bit per branch (a simplified
// agree predictor). It implements interferometry.Predictor, which is all
// the pipeline needs.
type agreeGshare struct {
	bias  map[uint64]bool // first-seen direction per branch ("agree" bit)
	table []int8          // 2-bit agree counters
	hist  uint64
}

func newAgreeGshare() *agreeGshare {
	return &agreeGshare{bias: make(map[uint64]bool), table: make([]int8, 4096)}
}

func (a *agreeGshare) index(pc uint64) uint64 {
	h := pc >> 2
	return (h ^ h>>13 ^ a.hist&0xfff) & 4095
}

func (a *agreeGshare) Predict(pc uint64) bool {
	bias, seen := a.bias[pc]
	if !seen {
		return false
	}
	agree := a.table[a.index(pc)] >= 0
	if agree {
		return bias
	}
	return !bias
}

func (a *agreeGshare) Update(pc uint64, taken bool) {
	bias, seen := a.bias[pc]
	if !seen {
		a.bias[pc] = taken
		bias = taken
	}
	i := a.index(pc)
	if taken == bias {
		if a.table[i] < 1 {
			a.table[i]++
		}
	} else if a.table[i] > -2 {
		a.table[i]--
	}
	a.hist = a.hist<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (a *agreeGshare) Name() string  { return "agree-gshare-4096" }
func (a *agreeGshare) SizeBits() int { return 2*4096 + 12 }
func (a *agreeGshare) Reset() {
	a.bias = make(map[uint64]bool)
	for i := range a.table {
		a.table[i] = 0
	}
	a.hist = 0
}

func main() {
	spec, _ := interferometry.BenchmarkByName("445.gobmk")
	prog, err := interferometry.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := interferometry.RunCampaign(interferometry.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    300_000,
		Layouts:   40,
		BaseSeed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := ds.MPKIModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model)

	candidates := append(interferometry.PaperPredictors(),
		interferometry.PredictorFactory{
			Name: "agree-gshare-4096",
			New:  func() interferometry.Predictor { return newAgreeGshare() },
		},
	)
	evals, err := ds.EvaluatePredictors(model, candidates)
	if err != nil {
		log.Fatal(err)
	}

	real := ds.RealPredictor(model)
	fmt.Printf("\n%-20s %8s %12s\n", "predictor", "MPKI", "pred. CPI")
	fmt.Printf("%-20s %8.3f %8.4f (measured)\n", "machine (real)", real.MPKI, real.CPI.Center)
	for _, e := range evals {
		fmt.Printf("%-20s %8.3f %8.4f [%.4f, %.4f]\n",
			e.Name, e.MPKI, e.PredictedCPI.Center, e.PredictedCPI.Low, e.PredictedCPI.High)
	}
	fmt.Printf("%-20s %8.3f %8.4f (extrapolated)\n", "perfect", 0.0, model.PredictCPI(0).Center)
}
