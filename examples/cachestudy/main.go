// Cachestudy: the §1.3 experiment — using heap randomization along with
// code reordering to model cache effects on performance.
//
// The calculix analog keeps its hot working set on the heap, so the
// DieHard-style allocator's placement decides L1D conflicts; its cold
// arrays sit near the L2 boundary, so layout perturbs L2 misses too. We
// fit CPI against both cache events and against branch mispredictions,
// and compare how much each explains.
//
// Run with: go run ./examples/cachestudy
package main

import (
	"fmt"
	"log"

	"interferometry"
)

func main() {
	spec, _ := interferometry.BenchmarkByName("454.calculix")
	prog, err := interferometry.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	ds, err := interferometry.RunCampaign(interferometry.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    300_000,
		Layouts:   50,
		HeapMode:  interferometry.HeapRandomized, // the §1.3 ingredient
		BaseSeed:  11,
	})
	if err != nil {
		log.Fatal(err)
	}

	events := []struct {
		ev   interferometry.Event
		name string
	}{
		{interferometry.EvL1DMisses, "L1 data cache misses"},
		{interferometry.EvL2Misses, "L2 cache misses"},
		{interferometry.EvBranchMispredicts, "branch mispredictions"},
	}
	fmt.Printf("%s under heap randomization + code reordering (%d layouts)\n\n",
		prog.Name, len(ds.Obs))
	for _, e := range events {
		model, err := ds.FitCPI(e.ev)
		if err != nil {
			fmt.Printf("%-24s: no model (%v)\n", e.name, err)
			continue
		}
		sig := "not significant"
		if model.Significant() {
			sig = "significant"
		}
		fmt.Printf("%-24s: CPI = %.5f*x + %.4f   r²=%.3f (%s, p=%.3g)\n",
			e.name, model.Fit.Slope, model.Fit.Intercept, model.Fit.R2, sig, model.Fit.PValue)
	}

	// The combined model of §6.1.
	cm, err := ds.StandardCombined()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined 3-event model: r²=%.3f (F-test p=%.3g)\n", cm.Fit.R2, cm.Fit.PValue)

	// What would halving L2 misses buy on this machine?
	l2, err := ds.FitCPI(interferometry.EvL2Misses)
	if err == nil {
		mean := meanOf(ds.PKIs(interferometry.EvL2Misses))
		now := l2.Fit.Predict(mean)
		halved := l2.PredictCPI(mean / 2)
		fmt.Printf("\nhalving L2 misses (%.2f -> %.2f per KI): CPI %.4f -> %.4f [%.4f, %.4f]\n",
			mean, mean/2, now, halved.Center, halved.Low, halved.High)
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
