// Package interferometry is a Go implementation of Program
// Interferometry (Wang & Jiménez, IISWC 2011): building a performance
// model of a machine by running a benchmark under many semantically
// equivalent code and data layouts, measuring each with performance
// counters, and fitting regression models that relate adverse
// microarchitectural events (branch mispredictions, cache misses) to
// performance. The models then predict what the machine would do with a
// different branch predictor — without simulating anything but the
// predictor itself.
//
// Because this reproduction cannot ship SPEC CPU 2006, GCC, a Xeon E5440
// or Pin, every substrate is implemented in-repo: a synthetic benchmark
// suite over a virtual ISA, a Camino-style layout-perturbing toolchain, a
// DieHard-style randomizing allocator, a trace-driven machine timing
// model with caches and predictors, a Pin-style branch instrumentation
// tool, and the statistics (regression, t/F tests, confidence and
// prediction intervals) from first principles. See DESIGN.md for the
// inventory and EXPERIMENTS.md for paper-versus-measured results.
//
// The typical workflow:
//
//	spec, _ := interferometry.BenchmarkByName("400.perlbench")
//	prog, _ := interferometry.Generate(spec)
//	ds, _ := interferometry.RunCampaign(interferometry.CampaignConfig{
//		Program: prog, InputSeed: 1, Budget: 1_000_000, Layouts: 100,
//		BaseSeed: 42,
//	})
//	model, _ := ds.MPKIModel()
//	perfect := model.PredictCPI(0) // CPI with a perfect predictor, 95% PI
//
// and to evaluate a hypothetical predictor on the modeled machine:
//
//	evals, _ := ds.EvaluatePredictors(model, interferometry.PaperPredictors())
package interferometry

import (
	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/pintool"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
	"interferometry/internal/uarch/cache"
)

// Core workflow types.
type (
	// Spec parameterizes a synthetic benchmark.
	Spec = progen.Spec
	// Program is a layout-free benchmark program.
	Program = isa.Program
	// CampaignConfig describes an interferometry campaign.
	CampaignConfig = core.CampaignConfig
	// Dataset is the measured outcome of a campaign.
	Dataset = core.Dataset
	// Observation is one layout's measurement.
	Observation = core.Observation
	// ObsStatus distinguishes clean, retried and failed observations.
	ObsStatus = core.ObsStatus
	// LayoutFailure records one layout that exhausted its retry budget.
	LayoutFailure = core.LayoutFailure
	// CheckpointConfig enables JSONL observation checkpointing and resume.
	CheckpointConfig = core.CheckpointConfig
	// Model is a fitted CPI-versus-event regression model.
	Model = core.Model
	// CombinedModel is the multi-event regression model.
	CombinedModel = core.CombinedModel
	// Blame is the per-event variance attribution of §6.1.
	Blame = core.Blame
	// PredictorEval is a candidate predictor's simulated MPKI and
	// predicted CPI.
	PredictorEval = core.PredictorEval
	// LinearityConfig and LinearityResult drive the §3 simulation study.
	LinearityConfig = core.LinearityConfig
	// LinearityResult reports regression-extrapolation accuracy.
	LinearityResult = core.LinearityResult
	// ScreenResult is the adaptive significance-screen outcome.
	ScreenResult = core.ScreenResult
	// Interval is a confidence or prediction interval.
	Interval = stats.Interval
)

// Substrate types for advanced use.
type (
	// Executable is a linked program with concrete addresses.
	Executable = toolchain.Executable
	// Trace is a recorded layout-independent execution.
	Trace = interp.Trace
	// Machine is the timing model of the measured hardware.
	Machine = machine.Machine
	// MachineConfig parameterizes the timing model.
	MachineConfig = machine.Config
	// RunSpec is one machine measurement run.
	RunSpec = machine.RunSpec
	// Counters is a full performance-counter snapshot.
	Counters = machine.Counters
	// Measurement is a merged counter readout with derived metrics.
	Measurement = pmc.Measurement
	// Event identifies a performance-counter event.
	Event = pmc.Event
	// Predictor is a conditional branch direction predictor.
	Predictor = branch.Predictor
	// PredictorFactory builds fresh predictor instances for sweeps.
	PredictorFactory = branch.Factory
	// PinResult is a functional predictor-simulation outcome.
	PinResult = pintool.Result
	// CacheEval is a candidate cache geometry's simulated miss rate and
	// predicted CPI (the future-work extension of §8).
	CacheEval = core.CacheEval
	// CacheConfig describes a cache geometry.
	CacheConfig = cache.Config
	// HeapMode selects the allocator (bump or DieHard-style randomized).
	HeapMode = heap.Mode
	// Scale fixes an experiment's sample sizes.
	Scale = experiments.Scale
	// ExperimentContext caches campaign datasets across experiment
	// drivers.
	ExperimentContext = experiments.Context
)

// Heap modes.
const (
	// HeapBump is the sequential allocator: data layout identical across
	// seeds (code reordering only).
	HeapBump = heap.ModeBump
	// HeapRandomized is the DieHard-style randomizing allocator.
	HeapRandomized = heap.ModeRandomized
)

// Observation statuses.
const (
	// StatusOK is a first-attempt success.
	StatusOK = core.StatusOK
	// StatusRetried marks an observation that needed more than one attempt.
	StatusRetried = core.StatusRetried
	// StatusFailed marks a layout with no valid measurement.
	StatusFailed = core.StatusFailed
)

// Counter events.
const (
	EvInstructions      = pmc.EvInstructions
	EvBranchMispredicts = pmc.EvBranchMispredicts
	EvL1IMisses         = pmc.EvL1IMisses
	EvL2Misses          = pmc.EvL2Misses
	EvL1DMisses         = pmc.EvL1DMisses
)

// Suite returns the 23-benchmark SPEC CPU 2006 analog suite (§5.2).
func Suite() []Spec { return progen.Suite() }

// SimSuite returns the simulation-study suite (§3.2), including the
// Figure 5 benchmarks from SPEC 2000.
func SimSuite() []Spec { return progen.SimSuite() }

// BenchmarkByName finds a benchmark spec in either suite.
func BenchmarkByName(name string) (Spec, bool) { return progen.ByName(name) }

// Generate expands a benchmark spec into a program.
func Generate(spec Spec) (*Program, error) { return progen.Generate(spec) }

// RunCampaign measures a benchmark under many layouts (§4).
func RunCampaign(cfg CampaignConfig) (*Dataset, error) { return core.RunCampaign(cfg) }

// ScreenSignificance runs the §6.3 adaptive sampling protocol.
func ScreenSignificance(cfg CampaignConfig, step, maxLayouts int) (*ScreenResult, error) {
	return core.ScreenSignificance(cfg, step, maxLayouts)
}

// RunLinearityStudy sweeps predictor configurations through the timing
// simulator and measures regression-extrapolation error (§3).
func RunLinearityStudy(cfg LinearityConfig) (*LinearityResult, error) {
	return core.RunLinearityStudy(cfg)
}

// XeonE5440 returns the default machine configuration modeled on the
// paper's measurement platform (§5.4).
func XeonE5440() MachineConfig { return machine.XeonE5440() }

// NewMachine builds a timing-model instance.
func NewMachine(cfg MachineConfig) *Machine { return machine.New(cfg) }

// PaperPredictors returns the Figure 7/8 candidates: GAs predictors from
// 2KB to 16KB and L-TAGE.
func PaperPredictors() []PredictorFactory { return branch.PaperPredictors() }

// PredictorConfigSpace returns n predictor configurations of graded
// accuracy for linearity sweeps; the paper uses 145.
func PredictorConfigSpace(n int) []PredictorFactory { return branch.ConfigSpace(n) }

// NewLTAGE builds the default L-TAGE predictor (§7.2.2).
func NewLTAGE() Predictor { return branch.NewLTAGEDefault() }

// NewPerceptron builds a perceptron predictor (Jiménez & Lin, HPCA 2001)
// with the given table rows (a power of two) and global history length.
func NewPerceptron(rows, histLen int) Predictor { return branch.NewPerceptron(rows, histLen) }

// NewExperimentContext builds a context for the figure/table drivers at
// the given scale ("small", "medium" or "paper" via ScaleByName).
func NewExperimentContext(scale Scale) *ExperimentContext {
	return experiments.NewContext(scale)
}

// ScaleByName resolves an experiment scale by name.
func ScaleByName(name string) (Scale, bool) { return experiments.ScaleByName(name) }
