package interferometry_test

import (
	"testing"

	"interferometry"
)

// TestPublicAPIWorkflow exercises the documented workflow end to end
// through the root package only.
func TestPublicAPIWorkflow(t *testing.T) {
	spec, ok := interferometry.BenchmarkByName("400.perlbench")
	if !ok {
		t.Fatal("suite benchmark missing")
	}
	prog, err := interferometry.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := interferometry.RunCampaign(interferometry.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    150_000,
		Layouts:   20,
		BaseSeed:  42,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit.Slope <= 0 {
		t.Errorf("slope %v", model.Fit.Slope)
	}
	perfect := model.PredictCPI(0)
	real := ds.RealPredictor(model)
	if perfect.Center >= real.CPI.Center {
		t.Errorf("perfect prediction CPI %v should beat measured %v",
			perfect.Center, real.CPI.Center)
	}

	evals, err := ds.EvaluatePredictors(model, interferometry.PaperPredictors())
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 5 {
		t.Fatalf("%d predictor evals", len(evals))
	}
}

func TestPublicAPISuites(t *testing.T) {
	if n := len(interferometry.Suite()); n != 23 {
		t.Errorf("Suite has %d benchmarks", n)
	}
	if n := len(interferometry.SimSuite()); n != 13 {
		t.Errorf("SimSuite has %d benchmarks", n)
	}
	if _, ok := interferometry.BenchmarkByName("178.galgel"); !ok {
		t.Error("galgel missing")
	}
	if fs := interferometry.PredictorConfigSpace(145); len(fs) != 145 {
		t.Errorf("config space %d", len(fs))
	}
	if p := interferometry.NewLTAGE(); p.SizeBits() <= 0 {
		t.Error("L-TAGE size")
	}
	cfg := interferometry.XeonE5440()
	if cfg.MispredictPenalty <= 0 {
		t.Error("machine config empty")
	}
	if m := interferometry.NewMachine(cfg); m == nil {
		t.Error("nil machine")
	}
}

func TestPublicAPILinearity(t *testing.T) {
	spec, _ := interferometry.BenchmarkByName("401.bzip2")
	prog, err := interferometry.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interferometry.RunLinearityStudy(interferometry.LinearityConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    60_000,
		Configs:   interferometry.PredictorConfigSpace(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 16 {
		t.Errorf("%d points", len(res.Points))
	}
	if res.PerfectCPI <= 0 {
		t.Error("no perfect CPI")
	}
}

func TestPublicAPIScreen(t *testing.T) {
	spec, _ := interferometry.BenchmarkByName("470.lbm")
	prog, err := interferometry.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interferometry.ScreenSignificance(interferometry.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    100_000,
		BaseSeed:  9,
	}, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Error("lbm (loop-dominated FP) should fail the screen")
	}
}
