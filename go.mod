module interferometry

go 1.22
