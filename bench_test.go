// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B target per artifact. Each bench reports the
// figure's headline numbers as custom metrics, so `go test -bench=.`
// doubles as the reproduction harness:
//
//	go test -bench=Figure2 -benchmem
//	go test -bench=. -benchtime=1x -scale=medium
//
// The -scale flag selects small (default, seconds), medium, or paper (the
// paper's own sample sizes).
package interferometry_test

import (
	"flag"
	"sync"
	"testing"

	"interferometry"
	"interferometry/internal/experiments"
)

var scaleFlag = flag.String("scale", "small", "experiment scale: small, medium or paper")

// benchCtx caches campaign datasets across benchmark targets, exactly as
// the paper reuses "the same first 100 reorderings" across its figures.
var (
	benchCtxOnce sync.Once
	benchCtx     *interferometry.ExperimentContext
)

func ctx(b *testing.B) *interferometry.ExperimentContext {
	b.Helper()
	benchCtxOnce.Do(func() {
		scale, ok := interferometry.ScaleByName(*scaleFlag)
		if !ok {
			b.Fatalf("unknown scale %q", *scaleFlag)
		}
		benchCtx = interferometry.NewExperimentContext(scale)
	})
	return benchCtx
}

// BenchmarkFigure1Violins regenerates Figure 1: percent CPI variation
// across code reorderings for the whole suite.
func BenchmarkFigure1Violins(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(c)
		if err != nil {
			b.Fatal(err)
		}
		name, max := res.MaxSpread()
		b.ReportMetric(max, "max_spread_pct")
		_ = name
	}
}

// BenchmarkFigure2Regression regenerates Figure 2: the CPI-vs-MPKI
// regressions for 400.perlbench and 471.omnetpp.
func BenchmarkFigure2Regression(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[0].Model.Fit.Slope, "perlbench_slope")
		b.ReportMetric(res.Series[0].Model.Fit.Intercept, "perlbench_intercept")
		b.ReportMetric(res.Series[1].Model.Fit.R2, "omnetpp_r2")
	}
}

// BenchmarkFigure3CacheModel regenerates Figure 3: calculix cache-effect
// models under heap randomization + code reordering.
func BenchmarkFigure3CacheModel(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.L1.Model.Fit.R2, "l1_r2")
		b.ReportMetric(res.L1.Model.Fit.Slope, "l1_slope_cyc")
		b.ReportMetric(res.L2.Model.Fit.R2, "l2_r2")
	}
}

// BenchmarkFigure4Linearity regenerates Figure 4: regression
// extrapolation error over the predictor configuration sweep.
func BenchmarkFigure4Linearity(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgPerfectErrPct, "avg_perfect_err_pct")
		b.ReportMetric(res.AvgLTAGEErrPct, "avg_ltage_err_pct")
	}
}

// BenchmarkFigure5LinearityLines regenerates Figure 5: the normalized
// regression lines for the most- and least-linear benchmarks.
func BenchmarkFigure5LinearityLines(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(c, nil)
		if err != nil {
			b.Fatal(err)
		}
		var lin, non float64
		for _, s := range res.Linear {
			lin += s.ErrAtZero
		}
		for _, s := range res.NonLinear {
			non += s.ErrAtZero
		}
		b.ReportMetric(lin/3, "linear_panel_err_pct")
		b.ReportMetric(non/3, "nonlinear_panel_err_pct")
	}
}

// BenchmarkFigure6Blame regenerates Figure 6: r² attribution of CPI
// variance to branch mispredictions, L1I and L2 misses.
func BenchmarkFigure6Blame(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgBranch, "avg_branch_r2")
		b.ReportMetric(res.AvgCombined, "avg_combined_r2")
	}
}

// BenchmarkFigure7PredictorMPKI regenerates Figure 7: MPKI of the real
// and simulated predictors over the campaign reorderings.
func BenchmarkFigure7PredictorMPKI(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Avg["real"], "real_mpki")
		b.ReportMetric(res.Avg["gas-8KB"], "gas8kb_mpki")
		b.ReportMetric(res.Avg["gas-16KB"], "gas16kb_mpki")
		b.ReportMetric(res.Avg["l-tage"], "ltage_mpki")
	}
}

// BenchmarkFigure8PredictedCPI regenerates Figure 8: predicted CPI per
// predictor and the paper's §7.2 improvement headlines.
func BenchmarkFigure8PredictedCPI(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(c, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgRealCPI, "real_cpi")
		b.ReportMetric(res.PerfectImprovementPct, "perfect_improvement_pct")
		b.ReportMetric(res.LTAGEImprovementPct, "ltage_improvement_pct")
	}
}

// BenchmarkTable1Models regenerates Table 1: the per-benchmark
// least-squares models with prediction intervals at 0 MPKI.
func BenchmarkTable1Models(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanSlope(), "mean_slope")
		b.ReportMetric(float64(len(res.Rows)), "benchmarks")
	}
}

// BenchmarkAblations runs the reproduction's design-choice ablations:
// the measurement protocol, the fetch-alignment heuristic, the
// randomizing allocator, the pintool warmup pass and the hybrid machine
// predictor.
func BenchmarkAblations(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablations(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "ablations")
	}
}

// BenchmarkExtICache runs the future-work extension: instruction-cache
// interferometry (fit CPI vs L1I misses, evaluate hypothetical cache
// geometries through the model).
func BenchmarkExtICache(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtICache(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ValidationErrPct, "validation_err_pct")
		b.ReportMetric(res.Model.Fit.R2, "l1i_r2")
	}
}

// BenchmarkExtDepth runs the pipeline-depth sensitivity extension: the
// fitted slope ratio across two machines must recover the configured
// flush-penalty ratio.
func BenchmarkExtDepth(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtDepth(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRatio, "fitted_ratio")
		b.ReportMetric(res.TrueRatio, "true_ratio")
	}
}

// BenchmarkSignificanceScreen regenerates the §4.6/§6.3 screen: how many
// benchmarks reject the no-correlation null with escalating samples.
func BenchmarkSignificanceScreen(b *testing.B) {
	c := ctx(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Significance(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SignificantCount), "significant")
		b.ReportMetric(float64(res.Total), "total")
	}
}
